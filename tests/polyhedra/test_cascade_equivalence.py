"""Batched-vs-scalar congruence cascade equivalence.

The batched cascade's contract is exactness: for every query it must
return the *same* ``True``/``False``/``None`` verdict as the scalar
cascade AND charge the same :class:`TesterStats` tier attributions, so
that search trajectories and accuracy-regression counters are
bit-identical whichever engine runs.  This suite cross-checks both over
thousands of seeded random (box, modulus, window) queries, including
degenerate dimensions, full-period subgroup collapses, and
budget-exhaustion (``None``) regimes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.polyhedra.box import Box
from repro.polyhedra.cascade import (
    BatchCascade,
    CompiledCascade,
    verdicts_to_py,
)
from repro.polyhedra.congruence import CongruenceTester

#: Both batched rungs of the dispatch ladder are held to the same
#: bit-identical contract against the scalar tester.
ENGINES = {"batched": BatchCascade, "compiled": CompiledCascade}


def _random_ref(rng, d):
    """A random affine reference: coeffs (zeros allowed), const."""
    scale = int(rng.choice([1, 4, 8, 32, 120, 1000, 4096]))
    coeffs = []
    for _ in range(d):
        kind = rng.integers(0, 5)
        if kind == 0:
            coeffs.append(0)
        else:
            c = int(rng.integers(1, 40)) * scale // int(rng.choice([1, 2, 5]))
            coeffs.append(-c if rng.integers(0, 4) == 0 else max(c, 1))
    const = int(rng.integers(-500, 5000))
    return tuple(coeffs), const


def _random_queries(rng, d, n, m, line, *, big_extent=600):
    """(Blo, Bhi, wlo, line0) arrays, spanning every cascade tier."""
    lo = rng.integers(-8, 50, size=(n, d))
    kind = rng.integers(0, 4, size=(n, d))
    ext = np.where(
        kind == 0,
        1,  # degenerate dimension
        np.where(
            kind == 1,
            rng.integers(2, 9, size=(n, d)),  # small (enumeration tier)
            np.where(
                kind == 2,
                rng.integers(2, 70, size=(n, d)),  # medium (partial)
                rng.integers(60, big_extent, size=(n, d)),  # full-period
            ),
        ),
    )
    hi = lo + ext - 1
    # a few empty boxes
    empty = rng.random(n) < 0.05
    hi[empty, 0] = lo[empty, 0] - 1
    wlo = (rng.integers(0, m, size=n) // line) * line
    # line0 on the window's residue lattice (as the solver produces it),
    # sometimes far outside the reachable band, occasionally zero.
    line0 = wlo + rng.integers(-4, 60, size=n) * m
    line0[rng.random(n) < 0.1] = 0
    return lo, hi, wlo, line0


CONFIGS = [
    # (d, m, line, n_queries, budgets)
    (1, 256, 32, 300, {}),
    (2, 256, 32, 500, {}),
    (3, 8192, 32, 700, {}),
    (3, 1024, 64, 500, {}),
    (4, 8192, 32, 500, {}),
    # tiny budgets: force partial-over-limit, line-limit and abs-budget
    # exhaustion (None verdicts) through every tier
    (3, 8192, 32, 600, {"enum_limit": 64, "partial_limit": 128,
                        "line_candidate_limit": 8, "abs_search_budget": 16}),
    (2, 512, 32, 400, {"enum_limit": 16, "partial_limit": 32,
                       "abs_search_budget": 4}),
    (4, 32768, 32, 400, {"enum_limit": 256, "partial_limit": 512,
                         "line_candidate_limit": 64,
                         "abs_search_budget": 64}),
]


@pytest.mark.parametrize("engine", sorted(ENGINES), ids=sorted(ENGINES))
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("cfg", CONFIGS, ids=[f"d{c[0]}-m{c[1]}-{'tight' if c[4] else 'default'}-n{c[3]}" for c in CONFIGS])
def test_exists_interference_equivalence(cfg, seed, engine):
    d, m, line, n, budgets = cfg
    rng = np.random.default_rng(seed * 7919 + d * 131 + m)
    coeffs, const = _random_ref(rng, d)
    lo, hi, wlo, line0 = _random_queries(rng, d, n, m, line)

    scalar = CongruenceTester(**budgets)
    expected = [
        scalar.exists_interference(
            coeffs, const, Box(tuple(lo[i]), tuple(hi[i])),
            m, int(wlo[i]), line, int(line0[i]),
        )
        for i in range(n)
    ]
    batch_tester = CongruenceTester(**budgets)
    cascade = ENGINES[engine](coeffs, const, m, line, batch_tester)
    got = verdicts_to_py(cascade.exists_interference_many(lo, hi, wlo, line0))
    assert got == expected
    # Same tier attribution, counter for counter.
    assert batch_tester.stats.as_dict() == scalar.stats.as_dict()


@pytest.mark.parametrize("engine", sorted(ENGINES), ids=sorted(ENGINES))
@pytest.mark.parametrize("cap", [1, 2, 4])
@pytest.mark.parametrize("cfg", [CONFIGS[2], CONFIGS[5]],
                         ids=["default", "tight"])
def test_count_interfering_lines_equivalence(cfg, cap, engine):
    d, m, line, n, budgets = cfg
    rng = np.random.default_rng(cap * 7717 + d)
    coeffs, const = _random_ref(rng, d)
    lo, hi, wlo, line0 = _random_queries(rng, d, n, m, line)

    scalar = CongruenceTester(**budgets)
    expected = [
        scalar.count_interfering_lines(
            coeffs, const, Box(tuple(lo[i]), tuple(hi[i])),
            m, int(wlo[i]), line, int(line0[i]), cap=cap,
        )
        for i in range(n)
    ]
    batch_tester = CongruenceTester(**budgets)
    cascade = ENGINES[engine](coeffs, const, m, line, batch_tester)
    counts = cascade.count_interfering_lines_many(lo, hi, wlo, line0, cap=cap)
    got = [None if c < 0 else int(c) for c in counts]
    assert got == expected
    assert batch_tester.stats.as_dict() == scalar.stats.as_dict()


def test_full_period_subgroup_collapse():
    """Extents covering the whole residue period collapse to one gcd."""
    m, line = 256, 32
    coeffs, const = (48, 1024, 8), 16
    rng = np.random.default_rng(3)
    n = 200
    lo = rng.integers(0, 4, size=(n, 3))
    # dim0: period m/gcd(48,256)=16 → extent >= 16 is full-period;
    # dim1 coeff ≡ 0 (mod 256) → period 1, always full.
    ext = np.column_stack([
        rng.integers(16, 120, size=n),
        rng.integers(2, 6, size=n),
        rng.integers(2, 2000, size=n),
    ])
    hi = lo + ext - 1
    wlo = (rng.integers(0, m, size=n) // line) * line
    line0 = wlo + rng.integers(-2, 20, size=n) * m
    scalar = CongruenceTester()
    expected = [
        scalar.exists_interference(
            coeffs, const, Box(tuple(lo[i]), tuple(hi[i])),
            m, int(wlo[i]), line, int(line0[i]),
        )
        for i in range(n)
    ]
    tester = CongruenceTester()
    cascade = BatchCascade(coeffs, const, m, line, tester)
    got = verdicts_to_py(cascade.exists_interference_many(lo, hi, wlo, line0))
    assert got == expected
    assert tester.stats.as_dict() == scalar.stats.as_dict()
    assert scalar.stats.subgroup + scalar.stats.partial_enum > 0


def test_budget_kwargs_and_env_override(monkeypatch):
    t = CongruenceTester(enum_limit=7, abs_search_budget=3)
    assert t.enum_limit == 7 and t.abs_search_budget == 3
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_ENUM", "99")
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_PARTIAL", "123")
    t2 = CongruenceTester()
    assert t2.enum_limit == 99 and t2.partial_limit == 123
    # explicit kwarg beats the environment
    t3 = CongruenceTester(enum_limit=5)
    assert t3.enum_limit == 5 and t3.partial_limit == 123
    with pytest.raises(ValueError):
        CongruenceTester(enum_limit=0)
