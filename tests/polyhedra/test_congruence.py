"""Congruence machinery: exactness against brute force."""

import numpy as np
import pytest

from repro.polyhedra.box import Box
from repro.polyhedra.congruence import (
    CongruenceTester,
    count_distinct_lines_in_window,
    exists_absolute_interval,
    exists_mod_window,
)


def brute_mod_window(coeffs, const, box, m, wlo, wlen):
    for q in box.points():
        f = const + sum(c * x for c, x in zip(coeffs, q))
        if (f - wlo) % m < wlen:
            return True
    return False


def brute_abs(coeffs, const, box, lo, hi):
    for q in box.points():
        f = const + sum(c * x for c, x in zip(coeffs, q))
        if lo <= f <= hi:
            return True
    return False


def brute_lines(coeffs, const, box, m, wlo, line, exclude):
    lines = set()
    for q in box.points():
        f = const + sum(c * x for c, x in zip(coeffs, q))
        if (f - wlo) % m < line:
            ln = f // line
            if exclude is None or ln != exclude // line:
                lines.add(ln)
    return lines


CASES = [
    # (coeffs, const, box, m)
    ((8,), 0, Box((0,), (99,)), 256),
    ((8, 120), 40, Box((0, 0), (15, 9)), 256),
    ((32, 1024), 0, Box((1, 1), (8, 8)), 1024),
    ((7, 13), 5, Box((0, 0), (20, 20)), 64),
    ((0, 0), 17, Box((0, 0), (5, 5)), 32),
    ((256, -8), 100, Box((0, 0), (31, 31)), 512),
    ((1000,), 3, Box((0,), (50,)), 8192),
]


@pytest.mark.parametrize("coeffs,const,box,m", CASES)
def test_exists_mod_window_matches_bruteforce(coeffs, const, box, m):
    rng = np.random.default_rng(42)
    for _ in range(25):
        wlo = int(rng.integers(0, m))
        wlen = int(rng.integers(1, max(2, m // 4)))
        got = exists_mod_window(coeffs, const, box, m, wlo, wlen)
        assert got is not None
        assert got == brute_mod_window(coeffs, const, box, m, wlo, wlen)


def test_exists_mod_window_full_window_always_true():
    assert exists_mod_window((8,), 0, Box((0,), (3,)), 32, 5, 32) is True


def test_exists_mod_window_empty_box():
    assert exists_mod_window((8,), 0, Box((1,), (0,)), 32, 0, 8) is False


def test_subgroup_path_exercised_exactly():
    # Extent covers the full period: dimension collapses to gcd subgroup.
    # coeff 48, m 256 → g=16, period 16; extent 100 >= 16 → full.
    box = Box((0, 0), (99, 3))
    coeffs = (48, 1024)  # second dim: 1024 % 256 == 0 → contributes only c0
    for wlo in range(0, 256, 8):
        got = exists_mod_window(coeffs, 0, box, 256, wlo, 8)
        assert got == brute_mod_window(coeffs, 0, box, 256, wlo, 8)


@pytest.mark.parametrize("coeffs,const,box,m", CASES)
def test_exists_absolute_interval_matches_bruteforce(coeffs, const, box, m):
    rng = np.random.default_rng(7)
    vals = [
        const + sum(c * x for c, x in zip(coeffs, q)) for q in box.points()
    ]
    lo0, hi0 = min(vals), max(vals)
    for _ in range(25):
        lo = int(rng.integers(lo0 - 50, hi0 + 50))
        hi = lo + int(rng.integers(0, 64))
        got = exists_absolute_interval(coeffs, const, box, lo, hi)
        assert got is not None
        assert got == brute_abs(coeffs, const, box, lo, hi)


def test_count_distinct_lines_matches_bruteforce():
    coeffs, const, box, m, line = (8, 120), 16, Box((0, 0), (15, 9)), 256, 32
    for wlo in range(0, m, 32):
        expected = brute_lines(coeffs, const, box, m, wlo, line, None)
        got = count_distinct_lines_in_window(
            coeffs, const, box, m, wlo, line, cap=100
        )
        assert got == min(len(expected), 100)


def test_count_distinct_lines_cap_and_exclusion():
    coeffs, const, box = (32,), 0, Box((0,), (63,))
    m, line = 256, 32
    # every access hits window [0,32) when f ≡ 0 (mod 256): f = 32x → x ≡ 0 mod 8
    got = count_distinct_lines_in_window(coeffs, const, box, m, 0, line, cap=3)
    assert got == 3  # capped
    full = brute_lines(coeffs, const, box, m, 0, line, None)
    excl = sorted(full)[0] * line
    got2 = count_distinct_lines_in_window(
        coeffs, const, box, m, 0, line, cap=100, exclude_line_start=excl
    )
    assert got2 == len(full) - 1


def test_tester_exists_interference_excludes_own_line():
    tester = CongruenceTester()
    # Single access walking one line only: that line is line0 → no interference.
    coeffs, const, box = (8,), 0, Box((0,), (3,))  # f in [0, 24] — one line
    res = tester.exists_interference(coeffs, const, box, 256, 0, 32, 0)
    assert res is False
    # Same walk but line0 elsewhere → the touched line interferes.
    res2 = tester.exists_interference(coeffs, const, box, 256, 0, 32, 256 * 4)
    assert res2 is True


def test_tester_interference_across_way_multiple():
    tester = CongruenceTester()
    # f takes values 0 and 256 → lines 0 and 8, both in set-window 0.
    coeffs, const, box = (256,), 0, Box((0,), (1,))
    assert tester.exists_interference(coeffs, const, box, 256, 0, 32, 0) is True
