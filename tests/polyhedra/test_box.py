"""Unit tests for integer boxes."""

import pytest

from repro.polyhedra.box import Box


def test_volume_and_extents():
    b = Box((1, 2), (3, 2))
    assert b.volume == 3
    assert b.extents() == (3, 1)
    assert not b.is_empty


def test_empty_box():
    b = Box((2,), (1,))
    assert b.is_empty
    assert b.volume == 0
    assert list(b.points()) == []


def test_contains():
    b = Box((0, 0), (2, 2))
    assert b.contains((0, 0)) and b.contains((2, 2))
    assert not b.contains((3, 0))


def test_intersect():
    a = Box((0, 0), (4, 4))
    b = Box((2, 3), (9, 9))
    assert a.intersect(b) == Box((2, 3), (4, 4))
    assert a.intersect(Box((5, 5), (6, 6))).is_empty


def test_points_lexicographic():
    b = Box((0, 0), (1, 2))
    pts = list(b.points())
    assert pts == sorted(pts)
    assert len(pts) == b.volume


def test_unrank_rank_inverse():
    b = Box((2, -1, 0), (4, 1, 2))
    for idx in range(b.volume):
        p = b.unrank(idx)
        assert b.rank_of(p) == idx
    with pytest.raises(IndexError):
        b.unrank(b.volume)
    with pytest.raises(ValueError):
        b.rank_of((0, 0, 0))


def test_unrank_is_lexicographic():
    b = Box((0, 0), (3, 3))
    pts = [b.unrank(i) for i in range(b.volume)]
    assert pts == sorted(pts)


def test_fix_and_clamp():
    b = Box((0, 0), (5, 5))
    assert b.fix(0, 3) == Box((3, 0), (3, 5))
    assert b.clamp_dim(1, 2, 4) == Box((0, 2), (5, 4))


def test_rank_mismatch_rejected():
    with pytest.raises(ValueError):
        Box((0,), (1, 2))
