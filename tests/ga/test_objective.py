"""Objective wrapper tests (memoisation, decoding)."""

from repro.cache.config import CacheConfig
from repro.cme.analyzer import LocalityAnalyzer
from repro.ga.objective import (
    MemoizedObjective,
    PaddingObjective,
    SimulatorTilingObjective,
    TilingObjective,
)
from repro.transform.padding import PaddingSearchSpace
from tests.conftest import make_small_mm, make_small_transpose


def test_memoisation_counts():
    calls = []
    obj = MemoizedObjective(lambda v: calls.append(v) or float(sum(v)))
    assert obj((1, 2)) == 3.0
    assert obj((1, 2)) == 3.0
    assert obj((2, 2)) == 4.0
    assert obj.calls == 3
    assert obj.distinct_evaluations == 2
    assert len(calls) == 2


def test_tiling_objective_counts_replacement():
    nest = make_small_transpose(16)
    analyzer = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    obj = TilingObjective(analyzer)
    untiled = obj(tuple(l.extent for l in nest.loops))
    est = analyzer.estimate()
    assert untiled == float(est.replacement)


def test_simulator_objective_matches_simulation():
    nest = make_small_transpose(16)
    analyzer = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    obj = SimulatorTilingObjective(analyzer)
    assert obj((4, 4)) == float(analyzer.simulate(tile_sizes=(4, 4)).replacement)


def test_padding_objective_decodes():
    nest = make_small_mm(8)
    cache = CacheConfig(1024, 32, 1)
    analyzer = LocalityAnalyzer(nest, cache, seed=0)
    space = PaddingSearchSpace(nest.arrays(), way_bytes=cache.way_bytes,
                               line_bytes=cache.line_size)
    obj = PaddingObjective(analyzer, space)
    zero = obj(tuple([0] * space.num_variables))
    assert zero == float(analyzer.estimate().replacement)


def test_common_random_numbers_stable():
    """The same candidate evaluated twice must yield identical counts."""
    nest = make_small_transpose(16)
    analyzer = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=7)
    a = analyzer.estimate(tile_sizes=(4, 4)).replacement
    b = analyzer.estimate(tile_sizes=(4, 4)).replacement
    assert a == b
