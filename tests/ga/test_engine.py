"""GA engine tests: the Fig. 7 schedule and optimisation sanity."""

import numpy as np
import pytest

from repro.ga.encoding import Genome
from repro.ga.engine import GAConfig, GeneticAlgorithm


def quadratic_objective(target):
    def fn(values):
        return float(sum((v - t) ** 2 for v, t in zip(values, target)))
    return fn


def test_minimises_separable_quadratic():
    genome = Genome([(1, 64), (1, 64)])
    ga = GeneticAlgorithm(
        genome, quadratic_objective((17, 42)),
        GAConfig(population_size=30, seed=3),
    )
    res = ga.run()
    assert res.best_objective <= 9  # within ±3 per coordinate


def test_respects_generation_schedule():
    """Fig. 7: at least 15 generations, at most 25."""
    genome = Genome([(1, 8)])
    flat = GeneticAlgorithm(genome, lambda v: 0.0, GAConfig(seed=0))
    res = flat.run()
    assert res.generations == 15  # converges immediately once allowed
    assert res.converged_early

    rng = np.random.default_rng(0)
    noisy_values = {}

    def noisy(v):
        if v not in noisy_values:
            noisy_values[v] = float(rng.random() * 100)
        return noisy_values[v]

    genome2 = Genome([(1, 512)])
    res2 = GeneticAlgorithm(genome2, noisy, GAConfig(seed=1)).run()
    assert 15 <= res2.generations <= 25


def test_convergence_criterion_2_percent():
    """Population converged ⇔ best within 2% of the generation average."""
    genome = Genome([(1, 4)])
    ga = GeneticAlgorithm(genome, lambda v: 100.0, GAConfig(seed=0))
    objs = np.array([100.0, 101.0])
    assert ga._converged(objs)  # (100.5-100)/100.5 < 2%
    objs2 = np.array([100.0, 110.0])
    assert not ga._converged(objs2)


def test_history_recorded():
    genome = Genome([(1, 16)])
    res = GeneticAlgorithm(
        genome, quadratic_objective((5,)), GAConfig(population_size=10, seed=2)
    ).run()
    assert len(res.history) == res.generations
    for rec in res.history:
        assert rec.best <= rec.average
    assert res.evaluations == res.generations * 10


def test_distinct_evaluations_reported():
    """Regression: evaluations over-reported work; the result now also
    carries the distinct-genotype count the memo layer actually solves."""
    genome = Genome([(1, 4)])  # tiny space forces heavy revisiting
    res = GeneticAlgorithm(
        genome, quadratic_objective((2,)), GAConfig(population_size=10, seed=7)
    ).run()
    assert res.evaluations == res.generations * 10
    assert 0 < res.distinct_evaluations <= 4
    assert res.distinct_evaluations < res.evaluations

    from repro.ga.objective import MemoizedObjective

    memo = MemoizedObjective(quadratic_objective((2,)))
    res2 = GeneticAlgorithm(
        genome, memo, GAConfig(population_size=10, seed=7)
    ).run()
    assert res2.distinct_evaluations == memo.distinct_evaluations


def test_best_ever_tracked_across_generations():
    genome = Genome([(1, 128)])
    res = GeneticAlgorithm(
        genome, quadratic_objective((64,)), GAConfig(population_size=10, seed=4)
    ).run()
    assert res.best_objective == min(r.best for r in res.history)


def test_initial_values_seeding():
    genome = Genome([(1, 10_000)])
    target = 7777

    def fn(values):
        return abs(values[0] - target)

    cfg = GAConfig(population_size=10, min_generations=2, max_generations=3, seed=5)
    unseeded = GeneticAlgorithm(genome, fn, cfg).run()
    seeded = GeneticAlgorithm(genome, fn, cfg, initial_values=[(target,)]).run()
    assert seeded.best_objective == 0
    assert seeded.best_objective <= unseeded.best_objective


def test_config_validation():
    with pytest.raises(ValueError):
        GAConfig(population_size=1)
    with pytest.raises(ValueError):
        GAConfig(population_size=7)  # odd
    with pytest.raises(ValueError):
        GAConfig(min_generations=10, max_generations=5)


def test_determinism():
    genome = Genome([(1, 100), (1, 100)])
    fn = quadratic_objective((30, 60))
    r1 = GeneticAlgorithm(genome, fn, GAConfig(seed=11)).run()
    r2 = GeneticAlgorithm(genome, fn, GAConfig(seed=11)).run()
    assert r1.best_values == r2.best_values
    assert r1.convergence_trace == r2.convergence_trace
