"""End-to-end search tests on small problems (fast budgets)."""

import pytest

from repro.cache.config import CacheConfig
from repro.ga.engine import GAConfig
from repro.ga.padding_search import (
    optimize_joint_padding_tiling,
    optimize_padding,
    optimize_padding_then_tiling,
)
from repro.ga.tiling_search import baseline_seed_tiles, optimize_tiling, tiling_genome
from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read, write
from repro.ir.loops import Loop, LoopNest
from tests.conftest import make_small_transpose

QUICK = GAConfig(population_size=8, min_generations=3, max_generations=5, seed=0)
CACHE = CacheConfig(1024, 32, 1)


def test_tiling_search_improves_transpose():
    nest = make_small_transpose(48)
    res = optimize_tiling(nest, CACHE, config=QUICK, seed=1)
    assert res.replacement_after < res.replacement_before
    assert all(1 <= t <= 48 for t in res.tile_sizes)
    assert "T=" in res.summary()


def test_tiling_search_with_simulator_objective():
    nest = make_small_transpose(32)
    res = optimize_tiling(nest, CACHE, config=QUICK, seed=2, use_simulator=True)
    assert res.replacement_after <= res.replacement_before


def test_tiling_genome_ranges():
    nest = make_small_transpose(48)
    genome = tiling_genome(nest)
    assert genome.ranges == [(1, 48), (1, 48)]


def test_baseline_seeds_valid():
    nest = make_small_transpose(48)
    for tiles in baseline_seed_tiles(nest, CACHE):
        assert len(tiles) == 2
        assert all(1 <= t <= 48 for t in tiles)
    # untiled genotype always present
    assert (48, 48) in baseline_seed_tiles(nest, CACHE)


def _aliasing_nest(n=128):
    a = Array("a", (n,))
    b = Array("b", (n,))
    i = AffineExpr.var("i")
    return LoopNest(
        "alias", (Loop("i", 1, n),),
        (read(a, i, position=0), read(b, i, position=1), write(a, i, position=2)),
    )


def test_padding_search_fixes_aliasing():
    nest = _aliasing_nest()
    res = optimize_padding(nest, CACHE, config=QUICK, seed=3)
    assert res.before.replacement_ratio > 0.3
    assert res.after_padding.replacement_ratio < 0.05
    assert res.tile_sizes is None


def test_padding_then_tiling_pipeline():
    nest = _aliasing_nest()
    res = optimize_padding_then_tiling(nest, CACHE, config=QUICK, seed=4)
    assert res.after_padding_tiling is not None
    assert (
        res.after_padding_tiling.replacement_ratio
        <= res.before.replacement_ratio
    )
    assert "pad" in res.summary()


def test_joint_padding_tiling_extension():
    nest = _aliasing_nest()
    res = optimize_joint_padding_tiling(nest, CACHE, config=QUICK, seed=5)
    assert res.tile_sizes is not None
    assert res.after_padding_tiling is not None
    assert (
        res.after_padding_tiling.replacement_ratio
        <= res.before.replacement_ratio
    )
