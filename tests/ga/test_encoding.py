"""Encoding tests — including the paper's §3.3 worked example."""

import numpy as np
import pytest

from repro.ga.encoding import Genome, bits_for, decode_value


def test_paper_example_bit_widths():
    """§3.3: U=10 → k=4; U=100 → ceil(log2 100)=7, odd → 8."""
    assert bits_for(10) == 4
    assert bits_for(100) == 8


def test_paper_example_decodings():
    """§3.3: g1(12)=8 for U=10; g2(74)=29 for U=100."""
    assert decode_value(12, 1, 10, 4) == 8
    assert decode_value(74, 1, 100, 8) == 29


def test_paper_example_genes():
    """12 = '1100' → genes (3,0); 74 = '01001010' → genes (1,0,2,2)."""
    g = Genome([(1, 10), (1, 100)])
    bits = np.array([1, 1, 0, 0, 0, 1, 0, 0, 1, 0, 1, 0], dtype=np.uint8)
    assert g.decode(bits) == (8, 29)
    assert g.genes(bits, 0) == [3, 0]
    assert g.genes(bits, 1) == [1, 0, 2, 2]


def test_every_value_reachable():
    """The paper notes every tile size has at least one representation."""
    for upper in (2, 3, 7, 10, 100, 127):
        b = bits_for(upper)
        reachable = {decode_value(x, 1, upper, b) for x in range(1 << b)}
        assert reachable == set(range(1, upper + 1))


def test_decode_endpoints():
    b = bits_for(100)
    assert decode_value(0, 1, 100, b) == 1
    assert decode_value((1 << b) - 1, 1, 100, b) == 100


def test_zero_based_ranges():
    b = bits_for(17)
    vals = {decode_value(x, 0, 16, b) for x in range(1 << b)}
    assert vals == set(range(17))


def test_single_value_range_needs_no_bits():
    g = Genome([(1, 1), (1, 8)])
    assert g.bits[0] == 0
    ind = g.random_individual(np.random.default_rng(0))
    assert g.decode(ind)[0] == 1


def test_encode_decode_roundtrip():
    g = Genome([(1, 10), (1, 100), (0, 63)])
    rng = np.random.default_rng(5)
    for _ in range(200):
        values = (
            int(rng.integers(1, 11)),
            int(rng.integers(1, 101)),
            int(rng.integers(0, 64)),
        )
        assert g.decode(g.encode(values)) == values


def test_encode_validates():
    g = Genome([(1, 10)])
    with pytest.raises(ValueError):
        g.encode((11,))
    with pytest.raises(ValueError):
        g.encode((1, 2))


def test_genome_rejects_empty_range():
    with pytest.raises(ValueError):
        Genome([(5, 4)])


def test_decode_requires_exact_length():
    g = Genome([(1, 10)])
    with pytest.raises(ValueError):
        g.decode(np.zeros(3, dtype=np.uint8))
