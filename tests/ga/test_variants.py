"""GA variant tests: tournament selection and elitism."""

import numpy as np
import pytest

from repro.ga.encoding import Genome
from repro.ga.engine import GAConfig, GeneticAlgorithm
from repro.ga.operators import tournament_selection


def test_tournament_selects_population_size():
    rng = np.random.default_rng(0)
    out = tournament_selection(np.array([1.0, 5.0, 2.0, 0.5]), rng)
    assert len(out) == 4
    assert set(out) <= {0, 1, 2, 3}


def test_tournament_pressure():
    rng = np.random.default_rng(1)
    fitness = np.array([10.0, 1.0, 1.0, 1.0])
    counts = np.zeros(4)
    for _ in range(200):
        counts += np.bincount(tournament_selection(fitness, rng), minlength=4)
    # With k=2 the best wins ~ 2/N + ... — must dominate any single loser.
    assert counts[0] > 2 * counts[1]


def test_tournament_engine_optimises():
    genome = Genome([(1, 64)])
    cfg = GAConfig(population_size=10, selection="tournament",
                   min_generations=5, max_generations=10, seed=2)
    res = GeneticAlgorithm(genome, lambda v: abs(v[0] - 40), cfg).run()
    assert res.best_objective <= 3


def test_elitism_never_loses_the_best():
    genome = Genome([(1, 512)])
    cfg = GAConfig(population_size=10, elitism=True,
                   min_generations=8, max_generations=12, seed=3)
    res = GeneticAlgorithm(genome, lambda v: abs(v[0] - 300), cfg).run()
    # With elitism, the per-generation best never regresses.
    bests = [r.best for r in res.history]
    assert all(b2 <= b1 for b1, b2 in zip(bests, bests[1:]))


def test_unknown_selection_rejected():
    with pytest.raises(ValueError):
        GAConfig(selection="roulette")
