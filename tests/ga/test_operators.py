"""Genetic operator tests (Figs. 5–6)."""

import numpy as np

from repro.ga.operators import (
    mutate,
    remainder_stochastic_selection,
    single_point_crossover,
)


def test_selection_returns_population_size():
    rng = np.random.default_rng(0)
    fitness = np.array([1.0, 2.0, 3.0, 4.0])
    sel = remainder_stochastic_selection(fitness, rng)
    assert len(sel) == 4
    assert set(sel) <= {0, 1, 2, 3}


def test_selection_deterministic_integer_parts():
    """An individual with e_i >= 2 must appear at least floor(e_i) times."""
    rng = np.random.default_rng(1)
    fitness = np.array([6.0, 1.0, 1.0, 0.0])  # e = [3, 0.5, 0.5, 0]
    counts = np.bincount(remainder_stochastic_selection(fitness, rng), minlength=4)
    assert counts[0] >= 3
    assert counts[3] <= 1  # zero fitness: only a degenerate filler could pick it


def test_selection_zero_fitness_uniform():
    rng = np.random.default_rng(2)
    sel = remainder_stochastic_selection(np.zeros(6), rng)
    assert len(sel) == 6


def test_selection_bias_statistical():
    rng = np.random.default_rng(3)
    fitness = np.array([9.0, 1.0])
    counts = np.zeros(2)
    for _ in range(200):
        counts += np.bincount(
            remainder_stochastic_selection(fitness, rng), minlength=2
        )
    assert counts[0] > 4 * counts[1]


def test_crossover_exchanges_tails():
    rng = np.random.default_rng(4)
    a = np.zeros(16, dtype=np.uint8)
    b = np.ones(16, dtype=np.uint8)
    c1, c2 = single_point_crossover(a, b, rng)
    # Each child is a prefix of one parent + suffix of the other.
    site = int(np.argmax(c1 != a[0]))  # first position where c1 switches
    assert (c1[:site] == 0).all() and (c1[site:] == 1).all()
    assert (c2[:site] == 1).all() and (c2[site:] == 0).all()
    assert 1 <= site <= 15


def test_crossover_preserves_material():
    rng = np.random.default_rng(5)
    a = np.array([0, 1, 0, 1, 1, 0], dtype=np.uint8)
    b = np.array([1, 1, 1, 0, 0, 0], dtype=np.uint8)
    c1, c2 = single_point_crossover(a, b, rng)
    assert (c1 + c2 == a + b).all()  # column-wise material conserved


def test_crossover_short_individuals():
    rng = np.random.default_rng(6)
    a = np.array([0], dtype=np.uint8)
    b = np.array([1], dtype=np.uint8)
    c1, c2 = single_point_crossover(a, b, rng)
    assert list(c1) == [0] and list(c2) == [1]


def test_mutation_rates():
    rng = np.random.default_rng(7)
    bits = np.zeros(10_000, dtype=np.uint8)
    assert mutate(bits, 0.0, rng) is bits  # no copy when p=0
    flipped = mutate(bits, 1.0, rng)
    assert flipped.sum() == 10_000
    assert bits.sum() == 0  # original untouched
    some = mutate(bits, 0.01, rng)
    assert 30 <= some.sum() <= 300  # ~100 expected


def test_mutation_determinism():
    b = np.zeros(64, dtype=np.uint8)
    m1 = mutate(b, 0.1, np.random.default_rng(9))
    m2 = mutate(b, 0.1, np.random.default_rng(9))
    assert (m1 == m2).all()
