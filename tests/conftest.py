"""Shared fixtures: small kernels and caches used across the suite."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read, write
from repro.ir.loops import Loop, LoopNest
from repro.layout.memory import MemoryLayout


def make_small_mm(n: int = 24) -> LoopNest:
    a = Array("a", (n, n))
    b = Array("b", (n, n))
    c = Array("c", (n, n))
    i, j, k = AffineExpr.var("i"), AffineExpr.var("j"), AffineExpr.var("k")
    return LoopNest(
        name=f"mm{n}",
        loops=(Loop("i", 1, n), Loop("j", 1, n), Loop("k", 1, n)),
        refs=(
            read(a, i, j, position=0),
            read(b, i, k, position=1),
            read(c, k, j, position=2),
            write(a, i, j, position=3),
        ),
    )


def make_small_transpose(n: int = 32) -> LoopNest:
    a = Array("A", (n, n))
    b = Array("B", (n, n))
    i1, i2 = AffineExpr.var("i1"), AffineExpr.var("i2")
    return LoopNest(
        name=f"t2d{n}",
        loops=(Loop("i1", 1, n), Loop("i2", 1, n)),
        refs=(read(b, i1, i2, position=0), write(a, i2, i1, position=1)),
    )


def make_copy_1d(n: int = 7) -> LoopNest:
    """Fig. 2's one-dimensional loop: ``a[i] = 0`` for i in 1..n."""
    a = Array("a", (n,))
    i = AffineExpr.var("i")
    return LoopNest(name=f"copy{n}", loops=(Loop("i", 1, n),), refs=(write(a, i),))


@pytest.fixture
def small_mm() -> LoopNest:
    return make_small_mm()


@pytest.fixture
def small_transpose() -> LoopNest:
    return make_small_transpose()


@pytest.fixture
def tiny_cache() -> CacheConfig:
    """A 1KB direct-mapped cache: conflicts appear at tiny sizes."""
    return CacheConfig(1024, 32, 1)


@pytest.fixture
def cache_8kb() -> CacheConfig:
    return CacheConfig(8 * 1024, 32, 1)


@pytest.fixture
def mm_layout(small_mm) -> MemoryLayout:
    return MemoryLayout(small_mm.arrays())
