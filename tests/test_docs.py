"""Documentation anti-rot checks.

The docs are part of the contract surface, so they are tested:

* every registered CLI flag (``repro.cli.FLAG_SPEC``) and every
  ``REPRO_*`` environment variable referenced in the source appears in
  ``docs/CLI.md``;
* every ``python -m repro.cli`` invocation shown in the docs parses —
  unknown flags or commands in an example would raise here;
* fenced ``python`` blocks in README/docs compile, and blocks not
  marked ``<!-- docs-exec: skip -->`` also execute;
* relative links in the markdown files resolve to real files.
"""

from __future__ import annotations

import pathlib
import re
import shlex

import pytest

from repro import cli

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "docs" / "ARCHITECTURE.md",
    ROOT / "docs" / "CLI.md",
    ROOT / "docs" / "CORPUS.md",
    ROOT / "docs" / "LINTS.md",
    ROOT / "docs" / "TELEMETRY.md",
]
CLI_DOC = ROOT / "docs" / "CLI.md"
LINTS_DOC = ROOT / "docs" / "LINTS.md"


def test_doc_files_exist():
    for path in DOC_FILES:
        assert path.is_file(), f"missing documentation file {path}"


def test_every_cli_flag_is_documented():
    text = CLI_DOC.read_text()
    missing = [flag for flag in cli.FLAG_SPEC if flag not in text]
    assert not missing, f"flags absent from docs/CLI.md: {missing}"


def test_every_cli_command_is_documented():
    text = CLI_DOC.read_text()
    missing = [cmd for cmd in cli.COMMANDS if f"`{cmd}" not in text]
    assert not missing, f"commands absent from docs/CLI.md: {missing}"


def _source_env_vars() -> set[str]:
    found: set[str] = set()
    for directory in ("src", "examples"):
        for path in (ROOT / directory).rglob("*.py"):
            found.update(re.findall(r"REPRO_[A-Z]+(?:_[A-Z]+)*", path.read_text()))
    # Drop strict prefixes of longer names (e.g. the REPRO_CASCADE_BUDGET
    # stem matched out of an f-string template).
    return {
        var
        for var in found
        if not any(other.startswith(var + "_") for other in found)
    }


def test_every_env_var_is_documented():
    text = CLI_DOC.read_text()
    missing = sorted(v for v in _source_env_vars() if v not in text)
    assert not missing, f"env vars absent from docs/CLI.md: {missing}"


def _fenced_blocks(path: pathlib.Path, language: str):
    """(block text, skip-execution?) for each ``language`` code fence."""
    lines = path.read_text().split("\n")
    blocks = []
    i = 0
    while i < len(lines):
        if lines[i].strip() == f"```{language}":
            skip = any(
                "docs-exec: skip" in lines[j]
                for j in range(max(0, i - 2), i)
            )
            body = []
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            blocks.append(("\n".join(body), skip))
        i += 1
    return blocks


def test_python_code_blocks_compile_and_run():
    ran = 0
    for path in DOC_FILES:
        for block, skip in _fenced_blocks(path, "python"):
            compile(block, f"{path.name}:code-block", "exec")
            if not skip:
                exec(block, {"__name__": "__docs__"})  # noqa: S102
                ran += 1
    assert ran >= 1  # at least one executable block guards against rot


def test_cli_invocations_in_docs_parse():
    """Every `python -m repro.cli …` line shown in the docs must parse
    against the real flag spec and name a real command."""
    checked = 0
    for path in DOC_FILES:
        for block, _skip in _fenced_blocks(path, "bash"):
            # Join backslash line-continuations, then scan for cli calls.
            joined = block.replace("\\\n", " ")
            for line in joined.split("\n"):
                if "python -m repro.cli" not in line:
                    continue
                argv = shlex.split(line.split("#", 1)[0])
                args = argv[argv.index("repro.cli") + 1 :]
                positional, flags = cli.parse_flags(args)  # raises on typos
                assert positional, f"no command in doc line: {line!r}"
                assert positional[0] in cli.COMMANDS, (
                    f"unknown command {positional[0]!r} in doc line: {line!r}"
                )
                checked += 1
    assert checked >= 5  # the docs really do show invocations


def test_every_lint_rule_is_documented():
    """docs/LINTS.md carries one ``### `rule-id` `` heading per
    registered contract rule — no more, no fewer (plus the engine's
    ``parse-error`` pseudo-rule)."""
    from repro.contracts import RULES

    documented = set(re.findall(r"^### `([a-z\-]+)`", LINTS_DOC.read_text(),
                                flags=re.MULTILINE))
    assert documented == set(RULES) | {"parse-error"}


def test_lints_doc_shows_the_suppression_syntax():
    text = LINTS_DOC.read_text()
    assert "# repro: lint-ok[" in text
    assert "lint_baseline.json" in text


def test_markdown_links_resolve():
    link = re.compile(r"\]\((?!https?://|#)([^)#]+)(?:#[^)]*)?\)")
    for path in DOC_FILES:
        for target in link.findall(path.read_text()):
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{path.name} links to missing {target}"


def test_readme_documents_the_layer_map():
    text = (ROOT / "README.md").read_text()
    for layer in ("ir", "transform", "polyhedra", "cme", "evaluation",
                  "search"):
        assert layer in text
    assert "ARCHITECTURE.md" in text and "CLI.md" in text


@pytest.mark.slow
def test_readme_quickstart_block_runs_scaled_down():
    """The README quickstart executes for real (slow lane): same calls,
    a smaller kernel so it finishes in seconds."""
    block = next(
        b for b, skip in _fenced_blocks(ROOT / "README.md", "python") if skip
    )
    scaled = block.replace("make_mm(500)", "make_mm(48)")
    assert scaled != block
    exec(scaled, {"__name__": "__docs__"})  # noqa: S102
