"""LocalityAnalyzer facade tests."""

from repro.cache.config import CacheConfig
from repro.cme.analyzer import LocalityAnalyzer
from repro.layout.memory import PaddingSpec
from tests.conftest import make_small_mm, make_small_transpose


def test_estimate_untiled_and_tiled():
    nest = make_small_transpose(32)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    before = an.estimate()
    after = an.estimate(tile_sizes=(4, 4))
    assert 0 <= after.replacement_ratio <= 1
    assert before.sampled_points == after.sampled_points == 164


def test_estimate_with_padding_uses_padded_layout():
    nest = make_small_mm(16)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    plain = an.estimate()
    padded = an.estimate(padding=PaddingSpec(inter={"b": 64}))
    # Different layouts generally give different counts; at minimum the
    # call must succeed and be internally consistent.
    assert padded.sampled_accesses == plain.sampled_accesses


def test_layout_cache_reuses_objects():
    nest = make_small_mm(8)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1))
    p = PaddingSpec(inter={"b": 8})
    l1 = an.layout_with(p)
    l2 = an.layout_with(PaddingSpec(inter={"b": 8}))
    assert l1 is l2
    assert an.layout_with(None) is an.layout


def test_simulate_agrees_with_direct_call():
    nest = make_small_transpose(16)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    sim = an.simulate(tile_sizes=(4, 4))
    assert sim.accesses == nest.num_accesses


def test_resample_changes_points():
    nest = make_small_mm(16)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    first = an.estimate().replacement
    an.resample()
    # Not guaranteed different, but the sample itself must change.
    assert an.seed == 1
    an.resample(seed=99)
    assert an.seed == 99


def test_custom_sample_points():
    nest = make_small_mm(8)
    an = LocalityAnalyzer(nest, CacheConfig(1024, 32, 1), seed=0)
    pts = [(1, 1, 1), (2, 2, 2)]
    est = an.estimate(points=pts)
    assert est.sampled_points == 2
