"""Sampling estimator tests (§2.3)."""

import pytest

from repro.cache.config import CacheConfig
from repro.cme.sampling import (
    PAPER_SAMPLE_SIZE,
    CMEEstimate,
    estimate_at_points,
    estimate_program,
    required_sample_size,
    sample_original_points,
)
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from tests.conftest import make_small_mm


def test_paper_sample_size_reproduced():
    """Width 0.1 at 90% confidence → the paper's 164 points."""
    assert required_sample_size(width=0.1, confidence=0.90) == 164
    assert PAPER_SAMPLE_SIZE == 164


def test_sample_size_monotonicity():
    assert required_sample_size(width=0.05) > required_sample_size(width=0.1)
    assert required_sample_size(confidence=0.99) > required_sample_size(confidence=0.9)
    with pytest.raises(ValueError):
        required_sample_size(width=0.0)
    with pytest.raises(ValueError):
        required_sample_size(confidence=1.0)


def test_sample_size_rejects_degenerate_inputs():
    """Validation happens before any quantile computation."""
    # confidence at or below 1/2 makes the one-sided quantile
    # non-positive — rejected rather than silently producing n=0.
    with pytest.raises(ValueError):
        required_sample_size(confidence=0.5)
    with pytest.raises(ValueError):
        required_sample_size(confidence=0.1)
    with pytest.raises(ValueError):
        required_sample_size(confidence=0.0)
    # A very wide interval at barely-above-coin-flip confidence needs
    # fewer than one point; refuse the degenerate single-point sample.
    with pytest.raises(ValueError, match="fewer than one sample point"):
        required_sample_size(width=0.99, confidence=0.55)


def test_zero_access_estimate_ratios_are_zero():
    """Regression: empty samples used to raise ZeroDivisionError."""
    est = CMEEstimate(
        sampled_points=0, sampled_accesses=0, hits=0, cold=0, replacement=0
    )
    assert est.miss_ratio == 0.0
    assert est.replacement_ratio == 0.0
    assert est.compulsory_ratio == 0.0
    assert est.ci_halfwidth() == 0.0
    assert est.estimated_replacement_misses == 0.0
    assert "miss=" in est.summary()


def test_estimate_at_points_empty_sample():
    nest = make_small_mm(8)
    layout = MemoryLayout(nest.arrays())
    est = estimate_at_points(
        program_from_nest(nest), layout, CacheConfig(1024, 32, 1), []
    )
    assert est.sampled_accesses == 0
    assert est.miss_ratio == 0.0


def test_sample_points_in_bounds_and_deterministic():
    nest = make_small_mm(10)
    pts1 = sample_original_points(nest, 50, 9)
    pts2 = sample_original_points(nest, 50, 9)
    assert pts1 == pts2
    for p in pts1:
        assert all(1 <= x <= 10 for x in p)


def test_estimate_accounting():
    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    est = estimate_program(
        program_from_nest(nest), layout, CacheConfig(1024, 32, 1),
        n_samples=64, seed=0,
    )
    assert est.sampled_points == 64
    assert est.sampled_accesses == 64 * 4
    assert est.hits + est.cold + est.replacement == est.sampled_accesses
    assert abs(est.miss_ratio - (est.cold + est.replacement) / est.sampled_accesses) < 1e-12
    assert est.total_accesses == nest.num_accesses
    per_ref_total = sum(sum(v.values()) for v in est.per_ref.values())
    assert per_ref_total == est.sampled_accesses


def test_ci_halfwidth_shrinks_with_samples():
    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    cache = CacheConfig(1024, 32, 1)
    small = estimate_program(program_from_nest(nest), layout, cache, n_samples=32, seed=0)
    large = estimate_program(program_from_nest(nest), layout, cache, n_samples=256, seed=0)
    assert large.ci_halfwidth(0.3) < small.ci_halfwidth(0.3)


def test_estimated_replacement_misses_scales():
    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    est = estimate_program(
        program_from_nest(nest), layout, CacheConfig(1024, 32, 1), n_samples=64, seed=1
    )
    expected = est.replacement_ratio * nest.num_accesses
    assert abs(est.estimated_replacement_misses - expected) < 1e-9


def test_summary_readable():
    nest = make_small_mm(8)
    layout = MemoryLayout(nest.arrays())
    est = estimate_program(
        program_from_nest(nest), layout, CacheConfig(1024, 32, 1), n_samples=16
    )
    s = est.summary()
    assert "miss=" in s and "repl=" in s
