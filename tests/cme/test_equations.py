"""Symbolic CME system tests — the §2.4 scaling laws."""

from repro.cache.config import CacheConfig
from repro.cme.generator import generate_cmes
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.transform.tiling import tile_program
from tests.conftest import make_small_transpose


def build(nest, tiles=None):
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest) if tiles is None else tile_program(nest, tiles)
    return generate_cmes(prog, layout, CacheConfig(1024, 32, 1))


def test_counts_single_region():
    nest = make_small_transpose(8)
    sys = build(nest)
    assert sys.num_regions == 1
    # one compulsory set per (ref, reuse vector); replacement ×refs.
    assert len(sys.replacement) == len(sys.compulsory) * len(nest.refs)


def test_region_scaling_factors():
    """§2.4: n regions ⇒ compulsory ×n, replacement ×n² equation sets."""
    nest = make_small_transpose(8)
    base = build(nest)
    tiled = build(nest, (3, 3))  # 8 = 2·3+2 → both dims boundary → 4 regions
    n = tiled.num_regions
    assert n == 4
    assert len(tiled.compulsory) == n * len(base.compulsory)
    assert len(tiled.replacement) == n * n * len(base.replacement)


def test_dividing_tiles_fewer_regions():
    nest = make_small_transpose(8)
    tiled = build(nest, (4, 2))  # exact division → single region
    assert tiled.num_regions == 1


def test_describe_and_filter():
    nest = make_small_transpose(8)
    sys = build(nest)
    text = sys.describe()
    assert "compulsory" in text and "replacement" in text
    sub = sys.for_reference(0)
    assert all(e.ref_position == 0 for e in sub.compulsory)
    assert all(e.ref_position == 0 for e in sub.replacement)
    assert sub.num_equations < sys.num_equations


def test_replacement_equation_mentions_modulus():
    nest = make_small_transpose(8)
    sys = build(nest)
    eq = sys.replacement[0]
    assert eq.modulus == 1024  # way size of the direct-mapped 1KB cache
    assert eq.window == 32
    assert "mod 1024" in eq.describe()
