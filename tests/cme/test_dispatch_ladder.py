"""The cascade dispatch ladder: compiled → batched-numpy → scalar.

Every rung must be forcible (knob, kwarg, or missing-dependency
fallback) and every rung must produce identical classification
outcomes and identical cascade-level tier attribution — the ladder
trades wall-clock only.  These tests force each rung explicitly, the
way an operator or a numba-less container would.
"""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cme.solver import PointClassifier
from repro.layout.memory import MemoryLayout
from repro.polyhedra import kernels
from repro.polyhedra.box import Box
from repro.polyhedra.cascade import CompiledCascade, verdicts_to_py
from repro.polyhedra.congruence import CongruenceTester
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm

CACHE = CacheConfig(2048, 32, 2)


def _classify_all(monkeypatch, batch_env, compiled_env):
    if batch_env is not None:
        monkeypatch.setenv("REPRO_BATCH_CASCADE", batch_env)
    if compiled_env is not None:
        monkeypatch.setenv("REPRO_COMPILED_CASCADE", compiled_env)
    nest = make_small_mm(12)
    layout = MemoryLayout(nest.arrays())
    prog = tile_program(nest, (4, 6, 6))
    pc = PointClassifier(prog, layout, CACHE)
    pts = [
        prog.point_map.from_original((i, j, k))
        for i, j, k in [(0, 0, 0), (3, 4, 5), (11, 11, 11), (6, 1, 9)]
    ]
    return pc.cascade_tier, pc.classify_batch(pts)


def test_env_knobs_select_every_rung(monkeypatch):
    """REPRO_BATCH_CASCADE / REPRO_COMPILED_CASCADE walk the ladder."""
    tier_default, out_default = _classify_all(monkeypatch, None, None)
    tier_batched, out_batched = _classify_all(monkeypatch, None, "0")
    tier_scalar, out_scalar = _classify_all(monkeypatch, "0", None)
    assert tier_default == "compiled"
    assert tier_batched == "batched"
    assert tier_scalar == "scalar"
    assert out_default == out_batched == out_scalar


def test_compiled_rung_needs_the_batched_rung(monkeypatch):
    """The ladder is layered: no batching ⇒ no compiled engine either,
    even with REPRO_COMPILED_CASCADE explicitly on."""
    monkeypatch.setenv("REPRO_COMPILED_CASCADE", "1")
    tier, _ = _classify_all(monkeypatch, "0", None)
    assert tier == "scalar"


def test_kwargs_override_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_CASCADE", "1")
    monkeypatch.setenv("REPRO_COMPILED_CASCADE", "1")
    nest = make_small_mm(12)
    layout = MemoryLayout(nest.arrays())
    prog = tile_program(nest, (6, 6, 6))
    assert PointClassifier(
        prog, layout, CACHE, compiled_cascade=False
    ).cascade_tier == "batched"
    assert PointClassifier(
        prog, layout, CACHE, batch_cascade=False
    ).cascade_tier == "scalar"
    assert PointClassifier(prog, layout, CACHE).cascade_tier == "compiled"


def _ladder_queries():
    rng = np.random.default_rng(11)
    coeffs, const, m, line = (40, 512, 4), 64, 2048, 32
    n = 400
    lo = rng.integers(-4, 30, size=(n, 3))
    hi = lo + rng.integers(1, 90, size=(n, 3)) - 1
    wlo = (rng.integers(0, m, size=n) // line) * line
    line0 = wlo + rng.integers(-3, 30, size=n) * m
    return coeffs, const, m, line, lo, hi, wlo, line0


def test_missing_numba_fallback_is_bit_identical(monkeypatch):
    """kernels.FORCE_NUMPY pins the pure-numpy loops (the container
    default when numba is absent); verdicts and tier attribution match
    the scalar tester either way."""
    coeffs, const, m, line, lo, hi, wlo, line0 = _ladder_queries()
    budgets = {"enum_limit": 64, "partial_limit": 128,
               "line_candidate_limit": 8, "abs_search_budget": 16}
    scalar = CongruenceTester(**budgets)
    expected = [
        scalar.exists_interference(
            coeffs, const, Box(tuple(lo[i]), tuple(hi[i])),
            m, int(wlo[i]), line, int(line0[i]),
        )
        for i in range(len(lo))
    ]
    for force in (True, False):
        monkeypatch.setattr(kernels, "FORCE_NUMPY", force)
        if force:
            assert not kernels.use_compiled_loops()
        tester = CongruenceTester(**budgets)
        cascade = CompiledCascade(coeffs, const, m, line, tester)
        got = verdicts_to_py(
            cascade.exists_interference_many(lo, hi, wlo, line0)
        )
        assert got == expected
        assert tester.stats.as_dict() == scalar.stats.as_dict()


def test_njit_stub_is_a_transparent_decorator():
    """Without numba the njit stand-in must alter nothing, bare or
    parameterised — the fallback ladder's bottom dependency rung."""
    if kernels.HAVE_NUMBA:
        pytest.skip("numba present: the stub decorator is unused")

    def f(x):
        return x + 1

    assert kernels.njit(f) is f
    assert kernels.njit(cache=True)(f) is f
    assert kernels.use_compiled_loops() is False
