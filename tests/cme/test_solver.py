"""Point-classifier unit tests on hand-analysable cases."""

import pytest

from repro.cache.config import CacheConfig
from repro.cme.solver import Outcome, PointClassifier
from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read, write
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.transform.tiling import tile_program


def streaming_nest(n=64):
    """a[i] = b[i]: pure streaming, no replacement misses possible."""
    a = Array("a", (n,))
    b = Array("b", (n,))
    i = AffineExpr.var("i")
    return LoopNest(
        "stream", (Loop("i", 1, n),),
        (read(b, i, position=0), write(a, i, position=1)),
    )


def pingpong_nest(n=64):
    """b aliased onto a's sets: every reuse dies (direct-mapped)."""
    a = Array("a", (128,))   # 1024 bytes = the whole cache way
    b = Array("b", (128,))
    i = AffineExpr.var("i")
    return LoopNest(
        "ping", (Loop("i", 1, n),),
        (read(a, i, position=0), read(b, i, position=1), write(a, i, position=2)),
    )


CACHE = CacheConfig(1024, 32, 1)


def classify_all(nest, tiles=None):
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest) if tiles is None else tile_program(nest, tiles)
    pc = PointClassifier(prog, layout, CACHE)
    outcomes = {}
    for orig in program_from_nest(nest).space.all_points_lex():
        p = prog.point_map.from_original(tuple(orig))
        outcomes[tuple(orig)] = pc.classify_point(p)
    return outcomes, pc


def test_streaming_never_replacement():
    outcomes, _ = classify_all(streaming_nest())
    for ocs in outcomes.values():
        assert Outcome.REPLACEMENT not in ocs


def test_streaming_cold_at_line_starts():
    outcomes, _ = classify_all(streaming_nest())
    # 8-byte elements, 32-byte lines: i ≡ 1 (mod 4) starts a new line.
    for (i,), (b_oc, a_oc) in outcomes.items():
        if i % 4 == 1:
            assert b_oc is Outcome.COLD
            assert a_oc is Outcome.COLD
        else:
            assert b_oc is Outcome.HIT
            assert a_oc is Outcome.HIT


def test_pingpong_classification_pattern():
    """Per iteration: a(r) hits (a(w) at i-1 reloaded the line just
    before), b(r) is killed by that same a(w), and a(w) is killed by
    the interleaved b(r) — the direct-mapped ping-pong."""
    outcomes, _ = classify_all(pingpong_nest())
    for (i,), (a_r, b_r, a_w) in outcomes.items():
        if i % 4 == 1:  # line starts: first touches are cold
            assert a_r is Outcome.COLD
            assert b_r is Outcome.COLD
        else:
            assert a_r is Outcome.HIT
            assert b_r is Outcome.REPLACEMENT
            assert a_w is Outcome.REPLACEMENT


def test_intra_iteration_read_write_hit():
    """a(i) write reuses the same-iteration a(i) read when no conflict."""
    n = 32
    a = Array("a", (n,))
    i = AffineExpr.var("i")
    nest = LoopNest(
        "rw", (Loop("i", 1, n),),
        (read(a, i, position=0), write(a, i, position=1)),
    )
    outcomes, _ = classify_all(nest)
    for (idx,), (r_oc, w_oc) in outcomes.items():
        assert w_oc is Outcome.HIT  # always: read just loaded the line


def test_tiled_boundary_crossing_reuse_found():
    """Reuse across a tile boundary must map through TileMap correctly."""
    nest = streaming_nest(10)
    outcomes, _ = classify_all(nest, tiles=(3,))  # tiles {1-3},{4-6},...
    # Lines hold elements {1-4},{5-8},{9-10...}; tiles end at 3, 6, 9.
    # i=7 starts tile 3 but sits inside line 2: the reuse source i=6
    # lives in the previous tile and must be found through the TileMap.
    assert outcomes[(7,)][0] is Outcome.HIT
    assert outcomes[(6,)][0] is Outcome.HIT
    # b sits at base 0: i=5 starts its second line → compulsory; a is
    # offset by b's 80 bytes, so its crossings fall at i=3 and i=7.
    assert outcomes[(5,)][0] is Outcome.COLD
    assert outcomes[(3,)][1] is Outcome.COLD
    assert outcomes[(5,)][1] is Outcome.HIT


def test_classify_ref_by_position():
    nest = streaming_nest(8)
    layout = MemoryLayout(nest.arrays())
    pc = PointClassifier(program_from_nest(nest), layout, CACHE)
    assert pc.classify_ref(0, (1,)) is Outcome.COLD
    assert pc.classify_ref(0, (2,)) is Outcome.HIT
    with pytest.raises(KeyError):
        pc.classify_ref(9, (1,))


def test_stats_populated():
    nest = pingpong_nest(16)
    _, pc = classify_all(nest)
    stats = pc.finalize_stats()
    assert stats.points == 16
    assert stats.ref_tests == 48
    assert stats.congruence  # dict filled in
