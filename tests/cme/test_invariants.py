"""Order-preservation invariants of the CME pipeline.

Two tilings leave the execution order untouched: ``T_i = extent_i``
(one full tile per dimension) and ``T_i = 1`` (tile loops *are* the
original loops).  Classification through the tiled representation must
then agree exactly with the untiled analysis — a strong end-to-end
consistency check of the TileMap, region construction, interval
decomposition and solver.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cme.sampling import estimate_at_points, sample_original_points
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.classify import simulate_program
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm, make_small_transpose

CACHE = CacheConfig(1024, 32, 1)


def classify(nest, tiles, points):
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest) if tiles is None else tile_program(nest, tiles)
    est = estimate_at_points(prog, layout, CACHE, points)
    return est.hits, est.cold, est.replacement


@pytest.mark.parametrize("make,extent", [(make_small_transpose, 20), (make_small_mm, 8)])
def test_full_extent_tiles_preserve_classification(make, extent):
    nest = make(extent)
    points = sample_original_points(nest, 120, 3)
    untiled = classify(nest, None, points)
    full = classify(nest, tuple(l.extent for l in nest.loops), points)
    assert untiled == full


@pytest.mark.parametrize("make,extent", [(make_small_transpose, 20), (make_small_mm, 8)])
def test_unit_tiles_preserve_classification(make, extent):
    nest = make(extent)
    points = sample_original_points(nest, 120, 3)
    untiled = classify(nest, None, points)
    unit = classify(nest, (1,) * nest.depth, points)
    assert untiled == unit


@pytest.mark.parametrize("tiles", [(20, 20), (1, 1)])
def test_order_preserving_tiles_identical_simulation(tiles):
    nest = make_small_transpose(20)
    layout = MemoryLayout(nest.arrays())
    base = simulate_program(program_from_nest(nest), layout, CACHE)
    tiled = simulate_program(tile_program(nest, tiles), layout, CACHE)
    assert base.misses == tiled.misses
    assert base.compulsory == tiled.compulsory
    assert base.per_ref_misses == tiled.per_ref_misses


def test_layout_shift_invariance():
    """Shifting every array by a whole way leaves set mappings intact."""
    nest = make_small_transpose(24)
    points = sample_original_points(nest, 100, 5)
    prog = program_from_nest(nest)
    base = estimate_at_points(prog, MemoryLayout(nest.arrays()), CACHE, points)
    shifted_layout = MemoryLayout(
        nest.arrays(), base_address=CACHE.way_bytes * 3
    )
    shifted = estimate_at_points(prog, shifted_layout, CACHE, points)
    assert (base.hits, base.replacement) == (shifted.hits, shifted.replacement)
