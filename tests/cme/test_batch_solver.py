"""Batched classification agrees outcome-for-outcome with the scalar
path — the equivalence contract documented in :mod:`repro.evaluation`.
"""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cme.sampling import estimate_at_points, sample_original_points
from repro.cme.solver import PointClassifier
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm, make_small_transpose

CACHE_DM = CacheConfig(1024, 32, 1)
CACHE_2W = CacheConfig(1024, 32, 2)
CACHE_8K = CacheConfig(8 * 1024, 32, 1)


def _programs():
    mm = make_small_mm(24)
    t2d = make_small_transpose(32)
    yield "mm-untiled", mm, program_from_nest(mm)
    yield "mm-tiled", mm, tile_program(mm, (5, 7, 24))
    yield "t2d-untiled", t2d, program_from_nest(t2d)
    yield "t2d-tiled", t2d, tile_program(t2d, (6, 11))


@pytest.mark.parametrize("cache", [CACHE_DM, CACHE_2W, CACHE_8K],
                         ids=["1KB-dm", "1KB-2way", "8KB-dm"])
def test_classify_batch_matches_classify_point(cache):
    for label, nest, prog in _programs():
        layout = MemoryLayout(nest.arrays())
        pts = sample_original_points(nest, 40, 11)
        pm = prog.point_map
        mapped = [pm.from_original(p) for p in pts]
        scalar = PointClassifier(prog, layout, cache)
        batched = PointClassifier(prog, layout, cache)
        expected = [scalar.classify_point(p) for p in mapped]
        got = batched.classify_batch(mapped)
        assert got == expected, label
        # The work counters agree too: same points, same ref tests,
        # same sources examined (the waves replay the scalar order).
        assert batched.stats.points == scalar.stats.points
        assert batched.stats.ref_tests == scalar.stats.ref_tests
        assert batched.stats.sources_checked == scalar.stats.sources_checked


def test_estimate_batch_flag_equivalence():
    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    prog = tile_program(nest, (4, 9, 16))
    pts = sample_original_points(nest, 64, 5)
    a = estimate_at_points(prog, layout, CACHE_DM, pts, batch=False)
    b = estimate_at_points(prog, layout, CACHE_DM, pts, batch=True)
    assert (a.hits, a.cold, a.replacement) == (b.hits, b.cold, b.replacement)
    assert a.per_ref == b.per_ref


def test_classify_batch_empty_and_single():
    nest = make_small_mm(8)
    prog = program_from_nest(nest)
    layout = MemoryLayout(nest.arrays())
    cls = PointClassifier(prog, layout, CACHE_DM)
    assert cls.classify_batch([]) == []
    one = cls.classify_batch([(1, 1, 1)])
    ref = PointClassifier(prog, layout, CACHE_DM).classify_point((1, 1, 1))
    assert one == [ref]


def test_point_map_batch_roundtrip():
    nest = make_small_mm(12)
    prog = tile_program(nest, (3, 5, 12))
    pm = prog.point_map
    pts = sample_original_points(nest, 30, 2)
    arr = np.asarray(pts, dtype=np.int64)
    mapped = pm.from_original_batch(arr)
    assert [tuple(int(x) for x in row) for row in mapped] == [
        pm.from_original(p) for p in pts
    ]
    back = pm.to_original_batch(mapped)
    assert [tuple(int(x) for x in row) for row in back] == list(pts)


def test_between_boxes_wave_matches_raw_decomposition():
    """The vectorised between-box decomposition emits the same boxes as
    the per-job `_raw_between_boxes`, job by job, in the same order —
    the frontier queues built on it charge budgets in that order."""
    rng = np.random.default_rng(7)
    for label, nest, prog in _programs():
        layout = MemoryLayout(nest.arrays())
        cls = PointClassifier(prog, layout, CACHE_DM)
        lo = np.min([r.lo for r in cls._regions], axis=0)
        hi = np.max([r.hi for r in cls._regions], axis=0)
        pairs = [
            (
                tuple(int(x) for x in rng.integers(lo - 1, hi + 2)),
                tuple(int(x) for x in rng.integers(lo - 1, hi + 2)),
            )
            for _ in range(40)
        ]
        Blo, Bhi, jid = cls._between_boxes_wave(
            np.array([s for s, _ in pairs], dtype=np.int64),
            np.array([u for _, u in pairs], dtype=np.int64),
        )
        got = [[] for _ in pairs]
        for b, j in enumerate(jid):
            got[int(j)].append(
                (tuple(int(x) for x in Blo[b]), tuple(int(x) for x in Bhi[b]))
            )
        for j, (src, use) in enumerate(pairs):
            want = [
                (blo, bhi) for blo, bhi, _v in cls._raw_between_boxes(src, use)
            ]
            assert got[j] == want, (label, j, src, use)
