"""Integration: the CME classifier against the exact simulator.

These are the accuracy tests behind the paper's claim that CMEs are "a
very accurate analytical model": classifying *every* iteration point of
small kernels must land close to the trace-simulated miss ratios, both
untiled and tiled (multi-region spaces), for two cache sizes.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cme.sampling import estimate_at_points
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.classify import simulate_program
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm, make_small_transpose


def full_point_estimate(nest, tiles, cache):
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest) if tiles is None else tile_program(nest, tiles)
    points = [
        tuple(p)
        for p in program_from_nest(nest).space.all_points_lex()
    ]
    est = estimate_at_points(prog, layout, cache, points)
    sim = simulate_program(prog, layout, cache)
    return est, sim


CASES = [
    (make_small_transpose(24), None),
    (make_small_transpose(24), (6, 6)),
    (make_small_transpose(24), (5, 7)),   # non-dividing: 4 regions
    (make_small_mm(12), None),
    (make_small_mm(12), (4, 4, 4)),
    (make_small_mm(12), (5, 12, 3)),
]


@pytest.mark.parametrize("cache_bytes", [1024, 2048])
@pytest.mark.parametrize("nest,tiles", CASES, ids=lambda c: getattr(c, "name", str(c)))
def test_cme_tracks_simulator(nest, tiles, cache_bytes):
    cache = CacheConfig(cache_bytes, 32, 1)
    est, sim = full_point_estimate(nest, tiles, cache)
    # The CME model is conservative (unknown → miss; candidate reuse set
    # is finite), so allow a one-sided band plus a small absolute slack.
    assert est.miss_ratio >= sim.miss_ratio - 0.06
    assert est.miss_ratio <= sim.miss_ratio + 0.15
    assert est.replacement_ratio <= sim.replacement_ratio + 0.15


def test_cme_exactness_on_streaming_kernel():
    """Pure streaming (transpose) has analytically known ratios."""
    nest = make_small_transpose(32)
    cache = CacheConfig(1024, 32, 1)
    est, sim = full_point_estimate(nest, None, cache)
    assert abs(est.miss_ratio - sim.miss_ratio) < 0.05


def test_tiling_improvement_agrees():
    """CME and simulator must agree on the *direction* of a tiling."""
    nest = make_small_transpose(48)
    cache = CacheConfig(1024, 32, 1)
    est_u, sim_u = full_point_estimate(nest, None, cache)
    est_t, sim_t = full_point_estimate(nest, (4, 4), cache)
    assert sim_t.replacement < sim_u.replacement
    assert est_t.replacement_ratio < est_u.replacement_ratio


def test_associative_cache_tracked_too():
    """The k-way path (distinct-line counting) also follows the simulator."""
    nest = make_small_transpose(24)
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest)
    cache = CacheConfig(1024, 32, 2)
    points = [tuple(p) for p in prog.space.all_points_lex()]
    est = estimate_at_points(prog, layout, cache, points)
    sim = simulate_program(prog, layout, cache)
    # k-way counting is deliberately conservative (over-reports misses).
    assert est.miss_ratio >= sim.miss_ratio - 0.06
    assert est.miss_ratio <= sim.miss_ratio + 0.20
