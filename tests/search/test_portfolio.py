"""PortfolioStrategy contracts: golden trajectory, worker invariance,
cache sharing, budget shares, restart policies, race mode, recursive
checkpoints, and the mid-wave share-exhaustion regression."""

import json
import pathlib

import pytest

from repro.search import (
    AnnealingStrategy,
    HillClimbStrategy,
    PortfolioStrategy,
    RandomStrategy,
    restore_strategy,
    run_search,
)
from repro.search.portfolio import parse_restart

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden.json").read_text()
)


def _quad(values):
    """Module-level (picklable) toy objective: distance² to (4, 27)."""
    return float((values[0] - 4) ** 2 + (values[1] - 27) ** 2)


def _members(budget=24, chunk=6):
    return [
        HillClimbStrategy(
            [32, 32], start=(16, 16), max_distinct=budget, neighborhood=False
        ),
        AnnealingStrategy([32, 32], budget=budget, seed=3),
        RandomStrategy([32, 32], budget=budget, seed=7, chunk=chunk),
    ]


def _golden_portfolio():
    return PortfolioStrategy(
        _members(), budget=72, restart="stagnation:3", seed=0
    )


# -- golden: the composite trajectory is pinned ---------------------------

def test_portfolio_matches_golden_trace():
    g = GOLDEN["portfolio_toy"]
    strategy = _golden_portfolio()
    res = run_search(strategy, _quad)
    assert [
        list(res.best_values), res.best_objective, res.steps,
        res.distinct_evaluations, res.consumed, res.consumed_distinct,
    ] == g["final"]
    assert [[list(e) for e in row] for row in strategy.plan_log] == g["plan_log"]
    assert strategy.events == g["events"]
    assert strategy.member_charged == g["member_charged"]
    assert strategy.member_restarts == g["member_restarts"]
    assert strategy.member_inherited == g["member_inherited"]
    assert strategy.member_best == g["member_best"]
    assert [r.best_objective for r in res.trace] == g["trace_best"]


# -- workers: identical composite trajectory for 1 vs 4 -------------------

def test_workers_do_not_change_portfolio_trajectory():
    serial = _golden_portfolio()
    res1 = run_search(serial, _quad, workers=1)
    parallel = _golden_portfolio()
    res4 = run_search(parallel, _quad, workers=4)
    assert res1 == res4  # SearchResult equality: best, counts, full trace
    assert serial.plan_log == parallel.plan_log
    assert serial.events == parallel.events
    assert serial.member_inherited == parallel.member_inherited


# -- cache sharing: one evaluator serves every member ---------------------

def test_members_share_the_evaluator_cache():
    """A candidate solved by one member is a memo hit for every other:
    the portfolio's distinct solves are strictly fewer than the sum of
    the members run in isolation."""
    portfolio = PortfolioStrategy(_members(), budget=72, seed=0)
    res = run_search(portfolio, _quad)
    isolated = sum(
        run_search(m, _quad).distinct_evaluations for m in _members()
    )
    assert res.distinct_evaluations < isolated
    # the gap is visible member-side too: hillclimb and annealing both
    # start from the midpoint, so at least one demand was inherited
    assert sum(portfolio.member_inherited) >= 1
    # and shares are only charged for solves a member actually caused
    assert sum(portfolio.member_charged) == res.consumed_distinct


def test_portfolio_respects_budget_shares():
    shares = [10, 10, 30]
    portfolio = PortfolioStrategy(
        _members(budget=40, chunk=5), shares=shares, budget=50, seed=0
    )
    run_search(portfolio, _quad)
    for charged, share in zip(portfolio.member_charged, shares):
        assert charged <= share
    assert sum(portfolio.member_charged) <= 50


# -- the satellite bugfix: mid-wave share exhaustion ----------------------

def test_share_exhaustion_mid_wave_does_not_strand_other_members():
    """Slot 0 proposes one 30-candidate wave but owns a share of 8: its
    contribution is truncated to the driver's max_distinct rule, while
    slot 1's candidates — queued after it in the merged super-wave —
    must ride in the same wave untouched."""
    big = RandomStrategy([64, 64], budget=30, seed=11, chunk=30)
    small = RandomStrategy([64, 64], budget=6, seed=12, chunk=6)
    portfolio = PortfolioStrategy(
        [big, small], shares=[8, 6], budget=14, seed=0
    )
    res = run_search(portfolio, _quad)
    (slot0, name0, proposed0, fresh0), (slot1, name1, proposed1, fresh1) = (
        portfolio.plan_log[0]
    )
    assert (slot0, slot1) == (0, 1)
    assert proposed0 == 8 and fresh0 == 8  # truncated: 30 proposed, 8 kept
    assert proposed1 == 6 and fresh1 == 6  # NOT stranded by slot 0's cut
    assert res.trace[0].proposed == 14
    assert portfolio.member_charged == [8, 6]
    assert any(e.startswith("exhaust[0") for e in portfolio.events)
    # slot 0 retires with its truncated wave unresolved; slot 1 finishes
    assert any(e.startswith("retire[0") for e in portfolio.events)


def test_truncation_follows_driver_rule_memoised_candidates_ride_free():
    """Candidates another member already solved do not burn the share."""
    a = RandomStrategy([16, 16], budget=10, seed=5, chunk=10)
    b = RandomStrategy([16, 16], budget=10, seed=5, chunk=10)  # same draws
    portfolio = PortfolioStrategy([a, b], shares=[10, 1], budget=11, seed=0)
    run_search(portfolio, _quad)
    # slot 1 re-proposes slot 0's wave: every candidate rides free
    assert portfolio.member_charged[1] == 0
    assert portfolio.member_inherited == [0, len(set(b.candidates))]


# -- restart policies ------------------------------------------------------

def test_stagnation_restarts_reseed_members():
    portfolio = PortfolioStrategy(
        _members(), budget=72, restart="stagnation:2", seed=0
    )
    res = run_search(portfolio, _quad)
    assert sum(portfolio.member_restarts) > 0
    assert any("stagnation" in e for e in portfolio.events)
    assert res.consumed_distinct <= 72


def test_interval_restarts_fire_on_schedule():
    portfolio = PortfolioStrategy(
        [AnnealingStrategy([32, 32], budget=20, seed=3)],
        budget=40, restart="interval:4", seed=0,
    )
    run_search(portfolio, _quad)
    assert portfolio.member_restarts[0] >= 1
    assert any("interval" in e for e in portfolio.events)


def test_no_restart_policy_retires_finished_members():
    portfolio = PortfolioStrategy(
        [HillClimbStrategy([16, 16], start=(8, 8), neighborhood=False)],
        budget=100, seed=0,
    )
    res = run_search(portfolio, _quad)
    assert res.finished
    assert portfolio.member_restarts == [0]
    assert any(e.startswith("retire[0") for e in portfolio.events)


def test_restarts_are_deterministically_reseeded():
    runs = []
    for _ in range(2):
        p = PortfolioStrategy(
            _members(), budget=72, restart="stagnation:2", seed=0
        )
        run_search(p, _quad)
        runs.append((p.events, p.plan_log, p.member_best))
    assert runs[0] == runs[1]


def test_parse_restart_specs():
    assert parse_restart(None) == ("never", 0)
    assert parse_restart("never") == ("never", 0)
    assert parse_restart("interval:7") == ("interval", 7)
    assert parse_restart("stagnation:3") == ("stagnation", 3)
    with pytest.raises(ValueError):
        parse_restart("sometimes:3")
    with pytest.raises(ValueError):
        parse_restart("interval:0")
    with pytest.raises(ValueError):
        parse_restart("interval")


# -- race mode -------------------------------------------------------------

def test_race_mode_reallocates_budget_to_best_member():
    portfolio = PortfolioStrategy(
        _members(), budget=120, mode="race", restart="stagnation:3", seed=0
    )
    res = run_search(portfolio, _quad)
    tranches = [e for e in portfolio.events if e.startswith("tranche")]
    assert tranches  # the raced half of the budget was handed out
    assert res.consumed_distinct <= 120
    assert sum(portfolio.member_charged) <= 120
    # the first tranche goes to the member that won the qualifying
    # round (later tranches may fall to runners-up once it retires)
    best_slot = min(
        range(3), key=lambda i: (portfolio.member_best[i], i)
    )
    assert tranches[0].startswith(f"tranche[{best_slot}")


def test_race_mode_is_worker_invariant():
    results = {}
    for workers in (1, 4):
        p = PortfolioStrategy(
            _members(), budget=96, mode="race", restart="stagnation:3", seed=0
        )
        results[workers] = (run_search(p, _quad, workers=workers), p.events)
    assert results[1] == results[4]


# -- speculation: member lookahead stays inert ----------------------------

def test_member_speculation_is_inert_for_the_composite():
    def build(spec):
        return PortfolioStrategy(
            [
                HillClimbStrategy(
                    [32, 32], start=(16, 16), max_distinct=24,
                    neighborhood=spec,
                ),
                AnnealingStrategy(
                    [32, 32], budget=24, seed=3,
                    speculation=3 if spec else 1,
                ),
            ],
            budget=48, restart="stagnation:3", seed=0,
        )

    plain = build(False)
    res_plain = run_search(plain, _quad)
    spec = build(True)
    res_spec = run_search(spec, _quad)
    # identical composite decisions: same plans, events, bests, charges
    assert spec.plan_log == plain.plan_log
    assert spec.events == plain.events
    assert res_spec.best_values == res_plain.best_values
    assert spec.member_charged == plain.member_charged
    # the speculative work itself is visible only as extra evaluations
    assert res_spec.distinct_evaluations >= res_plain.distinct_evaluations


# -- checkpointing ---------------------------------------------------------

def test_state_dict_recursively_serialises_members():
    portfolio = _golden_portfolio()
    run_search(portfolio, _quad)
    state = portfolio.state_dict()
    assert state["strategy"] == "portfolio"
    assert len(state["members"]) == 3
    names = [m["strategy"] for m in state["members"]]
    assert names == ["hillclimb", "annealing", "random"]
    for member_state in state["members"]:
        assert set(member_state) == {"strategy", "params", "memo"}
        # member memos are subsets of the composite memo
        for cand, val in member_state["memo"].items():
            assert state["memo"][cand] == val


def test_restore_replays_the_composite_trajectory():
    original = _golden_portfolio()
    res = run_search(original, _quad)
    restored = restore_strategy(
        {
            "strategy": "portfolio",
            "params": original._params(),
            "memo": dict(original._memo),
        }
    )
    replayed = run_search(restored, _quad)
    assert replayed.best_values == res.best_values
    assert replayed.best_objective == res.best_objective
    assert restored.plan_log == original.plan_log
    assert restored.events == original.events
    assert restored.member_charged == original.member_charged
    assert restored.member_inherited == original.member_inherited


def test_checkpoint_resume_continues_identically(tmp_path):
    ck = str(tmp_path / "portfolio.ck")
    full = run_search(_golden_portfolio(), _quad)
    capped = run_search(
        _golden_portfolio(), _quad, max_distinct=30, checkpoint_path=ck
    )
    assert not capped.finished
    resumed = run_search(None, _quad, resume=ck)
    assert resumed.finished
    assert resumed.best_values == full.best_values
    assert resumed.best_objective == full.best_objective
    assert resumed.strategy_ref.plan_log == full.strategy_ref.plan_log
    assert resumed.strategy_ref.events == full.strategy_ref.events


# -- construction validation ----------------------------------------------

def test_portfolio_rejects_bad_configuration():
    with pytest.raises(ValueError, match="at least one member"):
        PortfolioStrategy([])
    with pytest.raises(ValueError, match="shares"):
        PortfolioStrategy(_members(), shares=[1, 2], budget=30)
    with pytest.raises(ValueError, match="share"):
        PortfolioStrategy(_members(), shares=[0, 1, 1], budget=30)
    with pytest.raises(ValueError, match="budget"):
        PortfolioStrategy(_members(), shares=[20, 20, 20], budget=30)
    with pytest.raises(ValueError, match="mode"):
        PortfolioStrategy(_members(), mode="relay")
    with pytest.raises(TypeError, match="member"):
        PortfolioStrategy([42])
    with pytest.raises(ValueError, match="budget 2"):
        PortfolioStrategy(_members(), budget=2)


def test_repeated_seedless_members_are_reseeded():
    """`--members hillclimb,hillclimb` must not build identical clones:
    the repeat gets a fresh random start (restart-style reseeding)."""
    from repro.search.tiling import make_tiling_strategy
    from tests.conftest import make_small_transpose

    portfolio = make_tiling_strategy(
        "portfolio", make_small_transpose(32), budget=40, seed=0,
        members=("hillclimb", "hillclimb"),
    )
    starts = [spec["params"]["start"] for spec in portfolio.member_specs]
    assert starts[0] != starts[1]
    # seeded strategies already diverge through their derived seeds
    seeded = make_tiling_strategy(
        "portfolio", make_small_transpose(32), budget=40, seed=0,
        members=("annealing", "annealing"),
    )
    states = [spec["params"]["rng_state"] for spec in seeded.member_specs]
    assert states[0] != states[1]


def test_member_instances_are_templates_not_mutated():
    members = _members()
    portfolio = PortfolioStrategy(members, budget=72, seed=0)
    run_search(portfolio, _quad)
    for m in members:
        assert m.consumed == 0 and not m._memo  # originals untouched
