"""Driver mechanics of the repro.search subsystem: propose/observe
loop, accounting, budget capping, checkpoint/resume."""

import pickle

import pytest

from repro.evaluation import Evaluator
from repro.search import (
    ExhaustiveStrategy,
    HillClimbStrategy,
    RandomStrategy,
    load_checkpoint,
    restore_strategy,
    run_search,
)


def _quad(values):
    """Module-level (picklable) objective: distance² to (3, 5)."""
    return float((values[0] - 3) ** 2 + (values[1] - 5) ** 2)


def test_run_search_result_accounting():
    strategy = RandomStrategy([8, 8], budget=20, seed=0, chunk=6)
    result = run_search(strategy, _quad)
    assert result.strategy == "random"
    assert result.finished
    assert result.consumed == 20  # every draw consumed, dups included
    assert result.consumed_distinct == strategy.consumed_distinct
    assert result.consumed_distinct <= 20
    assert result.distinct_evaluations == result.consumed_distinct
    assert result.steps == len(result.trace)
    # trace best-objective is monotone non-increasing
    bests = [r.best_objective for r in result.trace]
    assert bests == sorted(bests, reverse=True)


def test_run_search_shares_batch_objective_cache():
    """A BatchObjective passes through; its cache serves the search."""
    ev = Evaluator(_quad)
    ev((3, 5))  # pre-warm
    result = run_search(RandomStrategy([8, 8], budget=10, seed=1), ev)
    assert result.best_objective >= 0.0
    assert (3, 5) in ev.cache  # same evaluator, same cache


def test_max_distinct_caps_the_search():
    strategy = ExhaustiveStrategy([8, 8], chunk=4)
    result = run_search(strategy, _quad, max_distinct=12)
    assert not result.finished
    assert result.distinct_evaluations == 12  # 3 chunks of 4


def test_max_distinct_truncates_oversized_waves():
    """A single wave larger than the remaining budget is trimmed."""
    strategy = ExhaustiveStrategy([32, 32], chunk=1024)
    result = run_search(strategy, _quad, max_distinct=10)
    assert result.distinct_evaluations == 10
    assert result.evaluations == 10
    assert not result.finished


def test_capped_search_consumes_the_paid_wave():
    """Values evaluated in the final (budget-capped) wave reach best()."""
    strategy = ExhaustiveStrategy([8, 8], chunk=4)
    result = run_search(strategy, _quad, max_distinct=4)
    assert result.distinct_evaluations == 4
    # the 4 candidates are (1,1)..(1,4); the best of them must show up
    assert result.best_values == (1, 4)
    assert result.best_objective == _quad((1, 4))


def test_trace_records_post_consumption_best():
    result = run_search(RandomStrategy([8, 8], budget=12, seed=0, chunk=4), _quad)
    first = result.trace[0]
    assert first.best_values is not None
    assert first.best_objective < float("inf")
    assert result.trace[-1].best_objective == result.best_objective


def test_run_search_widens_batch_objective_pool():
    """workers= on the driver reaches a passed-in Evaluator's pool."""
    ev = Evaluator(_quad, workers=1)
    try:
        run_search(RandomStrategy([8, 8], budget=12, seed=0), ev, workers=3)
        assert ev.workers == 3
    finally:
        ev.close()


def test_search_tiling_enforces_budget():
    from repro.cache.config import CacheConfig
    from repro.search.tiling import search_tiling
    from tests.conftest import make_small_transpose

    nest = make_small_transpose(32)
    cache = CacheConfig(1024, 32, 1)
    out = search_tiling(
        nest, cache, strategy="exhaustive", budget=30, n_samples=16
    )
    assert out.search.distinct_evaluations <= 30
    # a budget too small for even one GA population is a clear error,
    # not a silent untiled result
    with pytest.raises(ValueError, match="budget"):
        search_tiling(nest, cache, strategy="ga", budget=5, n_samples=8)


def test_checkpoint_fingerprint_mismatch_refused(tmp_path):
    ck = str(tmp_path / "fp.ck")
    run_search(
        RandomStrategy([8, 8], budget=6, seed=0),
        _quad,
        checkpoint_path=ck,
        fingerprint=("T2D", 48),
    )
    with pytest.raises(ValueError, match="captured against"):
        run_search(None, _quad, resume=ck, fingerprint=("MM", 500))
    # same fingerprint (or none at all) resumes fine
    assert run_search(None, _quad, resume=ck, fingerprint=("T2D", 48)).finished
    assert run_search(None, _quad, resume=ck).finished


def test_strategy_state_roundtrip():
    strategy = HillClimbStrategy([16, 16], start=(8, 8), max_distinct=99)
    run_search(strategy, _quad)
    state = pickle.loads(pickle.dumps(strategy.state_dict()))
    clone = restore_strategy(state)
    replay = run_search(clone, _quad)
    assert replay.evaluations == 0  # pure fast-forward, nothing re-proposed
    assert clone.current == strategy.current
    assert clone.accepted == strategy.accepted
    assert clone.consumed == strategy.consumed
    assert clone.consumed_distinct == strategy.consumed_distinct


def test_restore_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown strategy"):
        restore_strategy({"strategy": "nope", "params": {}, "memo": {}})


def test_checkpoint_resume_equals_uninterrupted(tmp_path):
    ck = str(tmp_path / "search.ck")
    interrupted = run_search(
        HillClimbStrategy([32, 32], start=(16, 16)),
        _quad,
        max_distinct=8,
        checkpoint_path=ck,
    )
    assert not interrupted.finished
    resumed = run_search(None, _quad, resume=ck)
    full = run_search(HillClimbStrategy([32, 32], start=(16, 16)), _quad)
    assert resumed.finished
    assert resumed.best_values == full.best_values
    assert resumed.best_objective == full.best_objective
    assert resumed.consumed == full.consumed
    assert resumed.consumed_distinct == full.consumed_distinct


def test_checkpoint_version_guard(tmp_path):
    path = tmp_path / "bad.ck"
    path.write_bytes(pickle.dumps({"version": 99}))
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(str(path))


def test_resume_requires_strategy_or_checkpoint():
    with pytest.raises(ValueError, match="strategy is required"):
        run_search(None, _quad)


def test_checkpoint_written_at_termination(tmp_path):
    ck = str(tmp_path / "final.ck")
    result = run_search(
        RandomStrategy([6, 6], budget=9, seed=2, chunk=4),
        _quad,
        checkpoint_path=ck,
        checkpoint_every=1000,  # only the final write fires
    )
    payload = load_checkpoint(ck)
    assert payload["step"] == result.steps
    restored = restore_strategy(payload["strategy"])
    assert run_search(restored, _quad).evaluations == 0  # already done


def test_checkpoint_save_is_atomic_against_mid_dump_kill(tmp_path, monkeypatch):
    """A dump that dies partway (the kill-mid-pickle case) must leave
    the previous complete checkpoint readable and no torn temp behind."""
    import os

    from repro.search import driver
    from repro.search.driver import save_checkpoint

    ck = str(tmp_path / "atomic.ck")
    strategy = RandomStrategy([6, 6], budget=9, seed=2, chunk=4)
    run_search(strategy, _quad, checkpoint_path=ck)
    good = load_checkpoint(ck)

    real_dump = driver.pickle.dump

    def dying_dump(obj, fh, *a, **kw):
        fh.write(b"half a checkpoint")  # bytes land, then the "kill"
        raise KeyboardInterrupt

    monkeypatch.setattr(driver.pickle, "dump", dying_dump)
    with pytest.raises(KeyboardInterrupt):
        save_checkpoint(ck, strategy, 99, 99, set(), [])
    monkeypatch.setattr(driver.pickle, "dump", real_dump)

    assert load_checkpoint(ck) == good  # previous checkpoint untouched
    assert [f for f in os.listdir(tmp_path) if ".tmp" in f] == []
    # and the checkpoint still resumes
    assert run_search(None, _quad, resume=ck).finished


def test_stale_torn_tmp_never_breaks_resume(tmp_path):
    """Orphan temp files from a hard kill are inert: load/resume read
    only the committed checkpoint path."""
    ck = tmp_path / "search.ck"
    run_search(
        RandomStrategy([6, 6], budget=9, seed=2, chunk=4),
        _quad,
        checkpoint_path=str(ck),
    )
    (tmp_path / "search.ck.tmp.12345").write_bytes(b"\x80torn garbage")
    resumed = run_search(None, _quad, resume=str(ck))
    assert resumed.finished
