"""Strategy-equivalence guarantees of the repro.search migration.

Three families of checks:

* **golden**: every migrated strategy reproduces the pre-refactor
  serial implementation bit-for-bit at ``workers=1`` (trajectories
  captured from the seed code in ``golden.json`` — accepted-move
  sequences, raw objective call streams, final results, and the full
  GA generation history on both toy and real CME objectives);
* **workers**: trajectories are identical for ``workers=1`` vs
  ``workers=4`` — parallelism only changes wall-clock time;
* **speculation**: hill climbing's neighborhood waves and annealing's
  speculative chains change which candidates get evaluated, never a
  decision the algorithm makes.
"""

import json
import pathlib

import pytest

from repro.baselines.annealing import simulated_annealing
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.hillclimb import hill_climb
from repro.baselines.random_search import random_search
from repro.cache.config import CacheConfig
from repro.cme.analyzer import LocalityAnalyzer
from repro.ga.engine import GAConfig, GeneticAlgorithm
from repro.ga.objective import TilingObjective
from repro.ga.tiling_search import optimize_tiling, tiling_genome
from repro.search import AnnealingStrategy, HillClimbStrategy, run_search
from tests.conftest import make_small_transpose

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden.json").read_text()
)
CACHE = CacheConfig(1024, 32, 1)
QUICK = GAConfig(population_size=8, min_generations=3, max_generations=5, seed=0)


def toy(target):
    def fn(tiles):
        return float(sum((t - x) ** 2 for t, x in zip(tiles, target)))
    return fn


def _sq27(tiles):
    """Module-level (picklable) toy objective, target (4, 27)."""
    return float((tiles[0] - 4) ** 2 + (tiles[1] - 27) ** 2)


def _sq230(tiles):
    """Module-level (picklable) toy objective, target (2, 30)."""
    return float((tiles[0] - 2) ** 2 + (tiles[1] - 30) ** 2)


class Recorder:
    """Record the raw (cache-miss) call stream of an objective."""

    def __init__(self, fn):
        self.fn = fn
        self.stream = []

    def __call__(self, values):
        v = self.fn(values)
        self.stream.append([list(values), float(v)])
        return v


def _real_objective():
    analyzer = LocalityAnalyzer(
        make_small_transpose(32), CACHE, n_samples=48, seed=0
    )
    return lambda t: float(analyzer.estimate(tile_sizes=t).replacement)


# -- golden: bit-for-bit vs the pre-refactor serial implementations ------

def test_hillclimb_matches_seed_trajectory():
    g = GOLDEN["hillclimb_toy"]
    strategy = HillClimbStrategy([32, 32], start=(16, 16))
    run_search(strategy, toy((4, 27)))
    assert [[list(c), v] for c, v in strategy.accepted] == g["accepted"]
    assert [list(strategy.current), strategy.current_objective,
            strategy.consumed] == g["final"]


def test_hillclimb_matches_seed_on_real_cme_objective():
    g = GOLDEN["hillclimb_real"]
    res = hill_climb(make_small_transpose(32), _real_objective(), start=(16, 16))
    assert [list(res.tile_sizes), res.objective, res.evaluations] == g["final"]


def test_annealing_matches_seed_stream_and_result():
    g = GOLDEN["annealing_toy"]
    rec = Recorder(toy((2, 30)))
    res = simulated_annealing(
        make_small_transpose(32), rec, budget=120, seed=3
    )
    # speculation=1 issues exactly the seed's distinct-first-call stream
    assert rec.stream == g["stream"]
    assert [list(res.tile_sizes), res.objective, res.evaluations] == g["final"]


def test_annealing_matches_seed_on_real_cme_objective():
    g = GOLDEN["annealing_real"]
    rec = Recorder(_real_objective())
    res = simulated_annealing(make_small_transpose(32), rec, budget=60, seed=5)
    assert rec.stream == g["stream"]
    assert [list(res.tile_sizes), res.objective, res.evaluations] == g["final"]


def test_random_matches_seed():
    g = GOLDEN["random_toy"]
    rec = Recorder(toy((8, 8)))
    res = random_search(make_small_transpose(16), rec, budget=60, seed=7)
    assert [list(res.tile_sizes), res.objective, res.evaluations] == g["final"]
    assert len(rec.stream) == g["stream_len"]  # distinct draws, seed order


def test_exhaustive_matches_seed():
    res = exhaustive_search(make_small_transpose(12), toy((5, 9)))
    assert [list(res.tile_sizes), res.objective, res.evaluations] == (
        GOLDEN["exhaustive_toy"]["final"]
    )
    res = exhaustive_search(
        make_small_transpose(48), toy((48, 1)), max_points_per_dim=6
    )
    assert [list(res.tile_sizes), res.objective, res.evaluations] == (
        GOLDEN["exhaustive_grid"]["final"]
    )


def test_ga_matches_seed_history():
    g = GOLDEN["ga_toy"]
    res = GeneticAlgorithm(
        tiling_genome(make_small_transpose(16)), toy((5, 9)), QUICK
    ).run()
    assert list(res.best_values) == g["best_values"]
    assert res.best_objective == g["best_objective"]
    assert res.generations == g["generations"]
    assert res.converged_early == g["converged_early"]
    assert res.evaluations == g["evaluations"]
    assert res.distinct_evaluations == g["distinct_evaluations"]
    assert [
        [r.generation, r.best, r.average, list(r.best_values)]
        for r in res.history
    ] == g["history"]


def test_ga_tiling_pipeline_matches_seed():
    g = GOLDEN["ga_tiling_real"]
    r = optimize_tiling(make_small_transpose(48), CACHE, config=QUICK, seed=1)
    assert list(r.tile_sizes) == g["tile_sizes"]
    assert r.ga.best_objective == g["best_objective"]
    assert r.ga.generations == g["generations"]
    assert r.ga.evaluations == g["evaluations"]
    assert r.ga.distinct_evaluations == g["distinct_evaluations"]
    assert [[a, b, c] for a, b, c in r.ga.convergence_trace] == g["trace"]
    assert r.replacement_after == g["replacement_after"]


# -- workers: identical trajectories for 1 vs 4 workers -------------------

@pytest.mark.parametrize(
    "search,kwargs",
    [
        (hill_climb, {"start": (16, 16), "neighborhood": True}),
        (simulated_annealing, {"budget": 80, "seed": 3, "speculation": 3}),
        (random_search, {"budget": 50, "seed": 7}),
        (exhaustive_search, {"max_points_per_dim": 6}),
    ],
    ids=["hillclimb", "annealing", "random", "exhaustive"],
)
def test_workers_do_not_change_trajectories(search, kwargs):
    nest = make_small_transpose(32)
    obj = _sq27 if search is hill_climb else _sq230
    serial = search(nest, obj, workers=1, **kwargs)
    parallel = search(nest, obj, workers=4, **kwargs)
    assert serial == parallel  # full result: tiles, value, counts, trace


def test_workers_do_not_change_hillclimb_on_real_objective():
    nest = make_small_transpose(32)
    analyzer = LocalityAnalyzer(nest, CACHE, n_samples=48, seed=0)
    serial = hill_climb(nest, TilingObjective(analyzer), start=(16, 16))
    analyzer2 = LocalityAnalyzer(nest, CACHE, n_samples=48, seed=0)
    obj = TilingObjective(analyzer2, workers=4)
    try:
        parallel = hill_climb(nest, obj, start=(16, 16))
    finally:
        obj.close()
    assert serial == parallel


# -- speculation: lookahead never changes a decision ----------------------

def test_hillclimb_neighborhood_speculation_is_inert():
    plain = HillClimbStrategy([32, 32], start=(16, 16), neighborhood=False)
    run_search(plain, toy((4, 27)))
    spec = HillClimbStrategy([32, 32], start=(16, 16), neighborhood=True)
    spec_result = run_search(spec, toy((4, 27)))
    assert spec.accepted == plain.accepted
    assert spec.consumed == plain.consumed
    assert spec.consumed_distinct == plain.consumed_distinct
    # the neighborhood waves actually batch: fewer driver steps than
    # serial proposals, at the price of extra (speculative) evaluations
    assert spec_result.steps < plain.consumed
    assert spec_result.distinct_evaluations >= spec.consumed_distinct


def test_annealing_speculation_clones_any_bit_generator():
    """Speculation must clone the chain's BitGenerator class, not
    assume PCG64 (callers may pass their own Generator)."""
    import numpy as np

    nest = make_small_transpose(32)
    spec = simulated_annealing(
        nest, toy((2, 30)), budget=30,
        seed=np.random.Generator(np.random.MT19937(0)), speculation=3,
    )
    base = simulated_annealing(
        nest, toy((2, 30)), budget=30,
        seed=np.random.Generator(np.random.MT19937(0)), speculation=1,
    )
    assert spec.tile_sizes == base.tile_sizes
    assert spec.objective == base.objective


def test_annealing_speculative_chains_are_inert():
    base = AnnealingStrategy([32, 32], budget=120, seed=3, speculation=1)
    run_search(base, toy((2, 30)))
    spec = AnnealingStrategy([32, 32], budget=120, seed=3, speculation=4)
    spec_result = run_search(spec, toy((2, 30)))
    assert spec.chain == base.chain
    assert spec.best() == base.best()
    assert spec.consumed == base.consumed == 120
    # the whole point: far fewer synchronous waves than chain steps
    assert spec_result.steps < base.consumed / 2


def test_baselines_report_both_eval_counts():
    nest = make_small_transpose(16)
    res = random_search(nest, toy((8, 8)), budget=60, seed=7)
    assert res.evaluations == 60
    assert res.distinct_evaluations <= res.evaluations
    assert res.search.distinct_evaluations == res.distinct_evaluations
    tiles, val, evals = res  # legacy 3-tuple unpacking still works
    assert (tiles, val, evals) == (
        res.tile_sizes, res.objective, res.evaluations
    )


def test_hillclimb_budget_charged_in_distinct_solves():
    """Memo revisits no longer burn max_evals (the satellite bugfix)."""
    strategy = HillClimbStrategy([32, 32], start=(16, 16), max_distinct=20)
    run_search(strategy, toy((4, 27)))
    assert strategy.consumed_distinct <= 20
    # the serial path revisits neighbours freely beyond the budget
    assert strategy.consumed >= strategy.consumed_distinct
