"""Telemetry must not move a single bit of any result.

Two directions: disabled mode is the null recorder (no file, no byte,
trajectories pinned against the same golden traces as the seed code),
and *enabled* mode — though it records freely — yields the identical
trajectory, because instrumented code only ever writes."""

import json
import pathlib

import pytest

from repro import telemetry
from repro.cache.config import CacheConfig
from repro.search import HillClimbStrategy, run_search
from repro.search.tiling import search_tiling
from repro.telemetry import MemorySink
from tests.conftest import make_small_transpose

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden.json").read_text()
)
CACHE = CacheConfig(1024, 32, 1)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def toy(tiles):
    return float((tiles[0] - 4) ** 2 + (tiles[1] - 27) ** 2)


def _golden_hillclimb():
    strategy = HillClimbStrategy([32, 32], start=(16, 16))
    run_search(strategy, toy)
    g = GOLDEN["hillclimb_toy"]
    assert [[list(c), v] for c, v in strategy.accepted] == g["accepted"]
    assert [list(strategy.current), strategy.current_objective,
            strategy.consumed] == g["final"]


def test_disabled_mode_matches_golden_and_writes_no_byte(
    tmp_path, monkeypatch
):
    """REPRO_TELEMETRY=0 beats even an explicit --trace request:
    nothing is installed, no file is created, and the trajectory is
    the seed code's, bit for bit."""
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    trace = tmp_path / "run.jsonl"
    assert telemetry.configure(str(trace), default=True) is None
    assert telemetry.recorder() is telemetry.NULL_RECORDER
    _golden_hillclimb()
    assert not trace.exists()


def test_enabled_mode_matches_the_same_golden_trace():
    """Recording on: the trajectory still equals the golden trace —
    telemetry observes the search, it never steers it."""
    sink = MemorySink()
    telemetry.configure(sink=sink, default=True)
    _golden_hillclimb()
    names = {e["name"] for e in sink.events}
    assert {"search.wave", "search.propose", "search.evaluate",
            "search.resolve"} <= names


def test_search_tiling_is_identical_with_telemetry_on(tmp_path):
    """The full real-objective pipeline, telemetry off vs on with a
    JSONL sink: equal outcome objects, and the trace is well-formed."""
    kw = dict(strategy="random", budget=10, seed=0, n_samples=32)
    off = search_tiling(make_small_transpose(48), CACHE, **kw)

    trace = tmp_path / "run.jsonl"
    telemetry.configure(str(trace), default=True)
    try:
        on = search_tiling(make_small_transpose(48), CACHE, **kw)
    finally:
        telemetry.shutdown()

    assert on.search == off.search  # full trajectory, trace included
    assert on.tile_sizes == off.tile_sizes
    assert on.after.replacement == off.after.replacement
    events = telemetry.load_events(str(trace))
    assert events and telemetry.validate_events(events) == []
