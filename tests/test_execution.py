"""Semantic-preservation tests for tiling via numeric execution."""

import numpy as np
import pytest

from repro.execution import (
    execute_nest,
    execute_sum_kernel,
    make_storage,
    tiling_preserves_semantics,
)
from repro.kernels.linalg import make_mm, make_t2d
from repro.kernels.stencil import make_jacobi3d
from tests.conftest import make_small_transpose


def test_transpose_executes_correctly():
    nest = make_t2d(8)
    storage = make_storage(nest)
    b_before = storage["B"].copy()
    out = execute_sum_kernel(nest, storage, accumulate=False)
    assert np.array_equal(out["A"], b_before.T)


def test_mm_matches_numpy():
    n = 10
    nest = make_mm(n)
    storage = make_storage(nest)
    a0 = storage["a"].copy()
    b = storage["b"].copy()
    c = storage["c"].copy()
    out = execute_sum_kernel(nest, storage, accumulate=True)
    assert np.array_equal(out["a"], a0 + b @ c)


@pytest.mark.parametrize("tiles", [(3, 3), (4, 7), (8, 1), (5, 5)])
def test_tiled_transpose_same_result(tiles):
    nest = make_t2d(8)
    assert tiling_preserves_semantics(nest, tiles, accumulate=False)


@pytest.mark.parametrize("tiles", [(4, 4, 4), (3, 10, 7), (10, 1, 10)])
def test_tiled_mm_same_result(tiles):
    nest = make_mm(10)
    assert tiling_preserves_semantics(nest, tiles)


def test_tiled_jacobi_same_result():
    # Jacobi writes a from b only: no loop-carried dependence, any
    # tiling is exact.
    nest = make_jacobi3d(8)
    assert tiling_preserves_semantics(nest, (2, 3, 6), accumulate=False)


def test_custom_body_and_order():
    """Tiled execution visits the same iterations, in a different order."""
    nest = make_small_transpose(6)
    seen_orig: list[tuple] = []
    seen_tiled: list[tuple] = []

    def recorder(dest):
        def body(env, st):
            dest.append((env["i1"], env["i2"]))
        return body

    execute_nest(nest, recorder(seen_orig), {}, tile_sizes=None)
    execute_nest(nest, recorder(seen_tiled), {}, tile_sizes=(4, 3))
    assert sorted(seen_orig) == sorted(seen_tiled)
    assert seen_orig != seen_tiled
    assert seen_orig == sorted(seen_orig)  # original order is lexicographic


def test_execution_guard():
    nest = make_mm(200)
    with pytest.raises(MemoryError):
        execute_sum_kernel(nest)


def test_multiple_writes_rejected():
    from repro.ir.affine import AffineExpr
    from repro.ir.arrays import Array, write
    from repro.ir.loops import Loop, LoopNest

    a = Array("a", (4,))
    i = AffineExpr.var("i")
    nest = LoopNest(
        "w2", (Loop("i", 1, 4),),
        (write(a, i, position=0), write(a, i, position=1)),
    )
    with pytest.raises(ValueError):
        execute_sum_kernel(nest)
