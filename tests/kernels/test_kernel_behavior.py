"""Behavioural calibration tests: kernels reproduce the paper's profiles.

These assert the *untiled* miss structure each kernel was modelled to
exhibit (Table 2 / Table 3 / §6 values, within a modelling band) and
that known-good tilings reduce the tileable kernels — the properties
the experiment reproductions depend on.
"""

import pytest

from repro.cache.config import CACHE_8KB_DM
from repro.cme.analyzer import LocalityAnalyzer
from repro.kernels.registry import get_kernel


def repl(name, size=None, tiles=None, seed=1):
    nest = get_kernel(name, size)
    an = LocalityAnalyzer(nest, CACHE_8KB_DM, seed=seed)
    return an.estimate(tile_sizes=tiles).replacement_ratio


@pytest.mark.parametrize(
    "name,size,paper,band",
    [
        ("T2D", 2000, 0.364, 0.06),      # Table 2
        ("T3DJIK", 200, 0.367, 0.06),    # Table 2
        ("JACOBI3D", 200, 0.072, 0.04),  # Table 2
        ("ADD", 64, 0.602, 0.10),        # Table 3
        ("BTRIX", 64, 0.501, 0.08),      # Table 3
        ("VPENTA1", 128, 0.783, 0.12),   # Table 3
        ("VPENTA2", 128, 0.860, 0.25),   # Table 3
        ("DPSSB", 256, 0.555, 0.10),     # §6
    ],
)
def test_untiled_replacement_matches_paper(name, size, paper, band):
    measured = repl(name, size)
    assert abs(measured - paper) <= band, (name, measured, paper)


@pytest.mark.parametrize(
    "name,size,tiles,factor",
    [
        ("T2D", 2000, (128, 8), 0.3),
        ("T3DJIK", 200, (4, 4, 4), 0.3),
        ("MM", 500, (20, 20, 20), 0.3),
        ("DPSSB", 256, (16, 30, 4), 0.3),
        ("DRADBG1", 100, (6, 4, 4), 0.75),
        ("DRADFG1", 100, (6, 8, 4), 0.75),
    ],
)
def test_known_tiles_reduce_tileable_kernels(name, size, tiles, factor):
    untiled = repl(name, size)
    tiled = repl(name, size, tiles=tiles)
    assert tiled < untiled * factor, (name, untiled, tiled)


@pytest.mark.parametrize("name", ["VPENTA1", "VPENTA2", "ADD"])
def test_conflict_kernels_resist_tiling(name):
    """Table 3's premise: these kernels' misses are conflicts, so no
    tiling helps much — padding is required."""
    untiled = repl(name)
    best = min(
        repl(name, tiles=t)
        for t in [(4, 4), (16, 16), (32, 8)]
        if len(t) == get_kernel(name).depth
    ) if get_kernel(name).depth == 2 else min(
        repl(name, tiles=t)
        for t in [(4, 4, 4, 4), (16, 16, 16, 5), (8, 8, 8, 5)]
        if len(t) == get_kernel(name).depth
    )
    assert best > untiled * 0.5, (name, untiled, best)


def test_jacobi_matches_table2_after_known_tiling():
    untiled = repl("JACOBI3D", 200)
    tiled = repl("JACOBI3D", 200, tiles=(8, 8, 198))
    assert tiled <= untiled
