"""Kernel suite tests against Table 1's inventory."""

import pytest

from repro.ir.validate import validate_nest
from repro.kernels.registry import (
    FIGURE_INSTANCES,
    KERNELS,
    get_kernel,
    instance_label,
    kernel_names,
)

TABLE1_DEPTHS = {
    "T2D": 2, "T3DJIK": 3, "T3DIKJ": 3, "JACOBI3D": 3, "MATMUL": 3,
    "MM": 3, "ADI": 2, "ADD": 4, "BTRIX": 3, "VPENTA1": 2, "VPENTA2": 2,
    "DPSSB": 3, "DPSSF": 3, "DRADBG1": 3, "DRADBG2": 3, "DRADFG1": 3,
    "DRADFG2": 3,
}


def test_all_table1_kernels_present():
    assert set(kernel_names()) == set(TABLE1_DEPTHS)


@pytest.mark.parametrize("name", sorted(TABLE1_DEPTHS))
def test_kernel_builds_and_validates(name):
    nest = get_kernel(name)
    validate_nest(nest)
    assert nest.depth == TABLE1_DEPTHS[name], f"{name} depth vs Table 1"
    assert nest.refs, name
    assert any(r.is_write for r in nest.refs), f"{name} has no write"


@pytest.mark.parametrize("name", sorted(TABLE1_DEPTHS))
def test_kernels_use_real8_fortran_layout(name):
    nest = get_kernel(name)
    for arr in nest.arrays():
        assert arr.element_size == 8
        assert arr.order == "F"
        assert arr.lower_bounds == (1,) * arr.rank


def test_figure_instances_match_paper_count():
    """Figs. 8-9 show 27 bars in a fixed order."""
    assert len(FIGURE_INSTANCES) == 27
    assert FIGURE_INSTANCES[0] == ("T2D", 100)
    assert FIGURE_INSTANCES[-1] == ("DRADFG1", 100)
    for name, size in FIGURE_INSTANCES:
        assert name in KERNELS


def test_instance_labels():
    assert instance_label("T2D", 2000) == "T2D_2000"
    assert instance_label("ADD", 64) == "ADD"  # figures omit NAS sizes


def test_sized_kernels_scale():
    small = get_kernel("MM", 10)
    large = get_kernel("MM", 20)
    assert large.num_iterations == 8 * small.num_iterations


def test_mm_matches_fig1():
    """Fig. 1: a(i,j) = a(i,j) + b(i,k) * c(k,j), loops i,j,k."""
    nest = get_kernel("MM", 8)
    assert nest.vars == ("i", "j", "k")
    names = [(r.array.name, r.is_write) for r in nest.refs]
    assert names == [("a", False), ("b", False), ("c", False), ("a", True)]


def test_default_sizes_are_papers():
    assert KERNELS["T2D"].sizes == (100, 500, 2000)
    assert KERNELS["T3DJIK"].sizes == (20, 100, 200)
    assert KERNELS["VPENTA1"].sizes == (128,)


def test_add_aliases_in_8kb_way():
    """The ADD model's u/rhs base distance is a way-size multiple."""
    from repro.layout.memory import MemoryLayout

    nest = get_kernel("ADD", 64)
    layout = MemoryLayout(nest.arrays())
    assert (layout.base("rhs") - layout.base("u")) % 8192 == 0


def test_vpenta_arrays_align():
    from repro.layout.memory import MemoryLayout

    nest = get_kernel("VPENTA1", 128)
    layout = MemoryLayout(nest.arrays())
    bases = [layout.base(a) for a in nest.arrays()]
    assert all((b - bases[0]) % 8192 == 0 for b in bases)


def test_dsl_spec_registration_roundtrip():
    """A shrunk corpus repro can be promoted to a (temporary) named
    kernel and built through the normal get_kernel path."""
    from repro.kernels.registry import (
        dsl_spec,
        register_kernel,
        unregister_kernel,
    )

    src = (
        "real a(6,7)\n"
        "do i = 1, 2\n"
        "  do j = 1, 6\n"
        "    a(j,i+j-1) = 0\n"
        "  enddo\n"
        "enddo\n"
    )
    spec = dsl_spec("CORPUS_DIAG", src, description="diagonal stencil repro")
    assert spec.depth == 2 and not spec.sized
    register_kernel(spec)
    try:
        nest = get_kernel("CORPUS_DIAG")
        assert nest.depth == 2
        assert nest.num_iterations == 12
        with pytest.raises(ValueError):
            register_kernel(spec)  # no silent replacement
    finally:
        assert unregister_kernel("CORPUS_DIAG") is spec
    assert "CORPUS_DIAG" not in KERNELS
    with pytest.raises(KeyError):
        unregister_kernel("CORPUS_DIAG")


def test_dsl_spec_rejects_malformed_source():
    from repro.kernels.registry import dsl_spec

    with pytest.raises(ValueError):
        dsl_spec("BROKEN", "real a(4)\n")  # no loops
