"""Cache configuration tests."""

import pytest

from repro.cache.config import CACHE_8KB_DM, CACHE_32KB_DM, CacheConfig


def test_paper_caches():
    assert CACHE_8KB_DM.num_sets == 256
    assert CACHE_8KB_DM.way_bytes == 8192
    assert CACHE_32KB_DM.num_sets == 1024
    assert CACHE_8KB_DM.num_lines == 256


def test_set_associative_geometry():
    c = CacheConfig(8 * 1024, 32, 2)
    assert c.num_sets == 128
    assert c.way_bytes == 4096
    assert c.num_lines == 256


def test_address_mapping():
    c = CACHE_8KB_DM
    assert c.line_of(0) == 0
    assert c.line_of(31) == 0
    assert c.line_of(32) == 1
    assert c.set_of(0) == 0
    assert c.set_of(8192) == 0  # wraps a way
    assert c.set_of(8192 + 32) == 1
    assert c.set_window(8192 + 40) == 32


def test_same_set_iff_congruent_mod_way():
    c = CACHE_8KB_DM
    for addr in (0, 100, 8191, 12345):
        assert c.set_of(addr) == c.set_of(addr + c.way_bytes)
        assert c.set_window(addr) == c.set_window(addr + c.way_bytes)


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        CacheConfig(1000, 32, 1)  # not a power of two
    with pytest.raises(ValueError):
        CacheConfig(1024, 33, 1)
    with pytest.raises(ValueError):
        CacheConfig(1024, 32, 0)
    with pytest.raises(ValueError):
        CacheConfig(1024, 512, 3)  # not divisible


def test_repr_mentions_geometry():
    assert "8KB" in repr(CACHE_8KB_DM)
    assert "DM" in repr(CACHE_8KB_DM)
    assert "2-way" in repr(CacheConfig(1024, 32, 2))
