"""Report module tests: charts and JSON export."""

import json

from repro.experiments.figure8 import FigureRow
from repro.report.charts import bar_chart, paired_bar_chart, sparkline
from repro.report.export import figure_rows_to_json, results_to_json, write_json


def test_bar_chart_scales_to_max():
    out = bar_chart(["a", "bb"], [0.5, 1.0], title="t", width=10)
    lines = out.splitlines()
    assert lines[0] == "t"
    assert lines[2].count("█") == 10  # the max bar fills the width
    assert 4 <= lines[1].count("█") <= 5


def test_bar_chart_empty_and_mismatch():
    assert bar_chart([], []) == ""
    import pytest

    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_paired_bar_chart_two_rows_per_label():
    out = paired_bar_chart(["k1", "k2"], [0.4, 0.2], [0.1, 0.0], title="F8")
    lines = out.splitlines()
    assert len(lines) == 2 + 4  # title + rule + 2 bars per label
    assert "NO tiling" in lines[2]
    assert "tiling" in lines[3]


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert s[0] == "▁" and s[-1] == "█"
    assert len(sparkline(list(range(100)), width=10)) == 10


def test_results_to_json_roundtrip():
    rows = [
        FigureRow("T2D_100", "T2D", 100, 0.04, 0.0, (4, 4)),
        FigureRow("MM_100", "MM", 100, 0.09, 0.02, (58, 10, 17)),
    ]
    data = json.loads(results_to_json(rows))
    assert data[0]["label"] == "T2D_100"
    assert data[1]["tile_sizes"] == [58, 10, 17]


def test_figure_rows_to_json_tagging():
    rows = [FigureRow("T2D_100", "T2D", 100, 0.04, 0.0, (4, 4))]
    data = json.loads(figure_rows_to_json(rows, "8KB"))
    assert data["cache"] == "8KB"
    assert len(data["bars"]) == 1


def test_write_json(tmp_path):
    rows = [FigureRow("X", "X", 1, 0.1, 0.0, (1,))]
    p = write_json(tmp_path / "sub" / "rows.json", rows)
    assert p.exists()
    assert json.loads(p.read_text())[0]["kernel"] == "X"


def test_numpy_scalars_serialisable():
    import numpy as np

    out = results_to_json([{"v": np.float64(0.5), "n": np.int64(3)}])
    data = json.loads(out)
    assert data[0]["v"] == 0.5 and data[0]["n"] == 3
