"""Corpus generator: reproducibility, validity, grammar coverage."""

import numpy as np
import pytest

from repro.corpus.generator import (
    GENERATOR_VERSION,
    Geometry,
    generate_case,
    generate_corpus,
    parse_geometry,
)
from repro.ir.parser import parse_nest
from repro.ir.validate import validate_nest

N_COVERAGE = 120


@pytest.fixture(scope="module")
def cases():
    return generate_corpus(0, N_COVERAGE)


def test_cases_reproducible_from_seed_and_index(cases):
    # Out-of-order regeneration must give identical cases: no hidden
    # state flows between indices.
    for i in (77, 3, 50, 0, 119):
        assert generate_case(0, i) == cases[i]


def test_distinct_seeds_differ():
    a = [generate_case(0, i).source for i in range(10)]
    b = [generate_case(1, i).source for i in range(10)]
    assert a != b


def test_every_case_parses_and_validates(cases):
    for case in cases:
        nest = parse_nest(case.source, name=case.name)
        validate_nest(nest)


def test_grammar_coverage(cases):
    """The generator must exercise the DSL fragment broadly."""
    nests = [parse_nest(c.source, name=c.name) for c in cases]
    depths = {n.depth for n in nests}
    assert depths >= {1, 2, 3}
    # scaled subscripts (2*k-style), multi-variable sums, and
    # parameter lines all appear somewhere in the corpus
    sources = "\n".join(c.source for c in cases)
    assert "2*" in sources or "3*" in sources
    assert "parameter (" in sources
    assert any(len(n.refs) >= 4 for n in nests)
    # boundary-condition stencils: same array read at shifted offsets
    def is_stencil(n):
        reads = [r for r in n.refs if not r.is_write]
        names = [r.array.name for r in reads]
        return any(names.count(x) >= 2 for x in set(names))
    assert any(is_stencil(n) for n in nests)


def test_geometry_coverage(cases):
    assocs = {c.geometry.l1.associativity for c in cases}
    assert 1 in assocs and len(assocs) >= 2
    assert any(c.geometry.multi_level for c in cases)
    assert any(not c.geometry.multi_level for c in cases)
    lines = {c.geometry.l1.line_size for c in cases}
    assert len(lines) >= 2


def test_both_modes_present(cases):
    modes = {c.mode for c in cases}
    assert modes == {"exact", "sampled"}


def test_mode_matches_point_count(cases):
    from repro import envs

    limit = envs.CORPUS_EXACT_POINTS.get()
    for case in cases[:30]:
        nest = parse_nest(case.source, name=case.name)
        expected = "exact" if nest.num_iterations <= limit else "sampled"
        assert case.mode == expected


def test_geometry_label_roundtrip(cases):
    for case in cases[:20]:
        assert parse_geometry(case.geometry.label) == case.geometry


def test_geometry_label_format():
    g = parse_geometry("1024:32:2")
    assert isinstance(g, Geometry)
    assert g.l1.size_bytes == 1024
    assert g.l1.line_size == 32
    assert g.l1.associativity == 2
    assert not g.multi_level
    g2 = parse_geometry("512:32:1,4096:64:2")
    assert g2.multi_level and g2.levels[1].size_bytes == 4096
    with pytest.raises(ValueError):
        parse_geometry("512:32")


def test_case_rng_is_version_scoped():
    # The case stream is keyed by (GENERATOR_VERSION, seed, index):
    # bumping the version changes every case, which is why reports
    # carry the version.
    rng = np.random.default_rng([GENERATOR_VERSION, 0, 5])
    rng2 = np.random.default_rng([GENERATOR_VERSION, 0, 5])
    assert rng.integers(1 << 30) == rng2.integers(1 << 30)


def test_case_sizes_bounded(cases):
    from repro.corpus.generator import MAX_CASE_ACCESSES

    for case in cases:
        nest = parse_nest(case.source, name=case.name)
        assert nest.num_iterations * len(nest.refs) <= MAX_CASE_ACCESSES
