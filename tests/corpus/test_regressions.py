"""Every checked-in regression repro must pass the differential oracle.

Files under ``tests/corpus/regressions/`` are minimal DSL sources the
shrinker reduced from real corpus divergences; each records the cache
geometry and oracle mode it failed under.  A file failing here means a
previously-fixed model/solver defect has returned.
"""

import pathlib

import pytest

from repro.corpus.oracle import run_case
from repro.corpus.shrink import load_regression

REGRESSION_DIR = pathlib.Path(__file__).parent / "regressions"
FILES = sorted(REGRESSION_DIR.glob("*.dsl"))


def test_regression_corpus_is_not_empty():
    assert FILES, "expected checked-in regression repros"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_regression_case_agrees(path):
    case = load_regression(path).to_corpus_case()
    report = run_case(case)
    assert report.ok, report.summary()


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_regression_repro_is_minimal(path):
    case = load_regression(path)
    lines = [l for l in case.source.splitlines() if l.strip()]
    assert len(lines) <= 10, f"{path.name}: repro no longer minimal"
