"""Differential oracle: seeded tier-1 slice + tolerance-class unit tests.

The slice sweeps the first 60 cases of corpus seed 0 through the full
differential pipeline — CME estimate vs exact trace simulation, cascade
dispatch-ladder bit-identity, multi-level hierarchy consistency — and
must report **zero divergences**.  The nightly CI lane runs the same
sweep at 300 cases; a failure here is a real model/solver regression,
reproducible via ``repro.cli corpus shrink INDEX``.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.corpus.generator import generate_case, parse_geometry
from repro.corpus.oracle import (
    DM_BAND,
    ASSOC_BAND,
    CaseReport,
    nonuniform_fraction,
    run_case,
    run_corpus,
    tolerance_for,
)

SLICE_SEED = 0
SLICE_CASES = 60


@pytest.fixture(scope="module")
def slice_report():
    return run_corpus(SLICE_SEED, SLICE_CASES)


def test_slice_has_zero_divergences(slice_report):
    assert not slice_report.divergences, "\n" + "\n".join(
        r.summary() for r in slice_report.divergences
    )


def test_slice_exercises_every_check(slice_report):
    reports = slice_report.reports
    assert len(reports) == SLICE_CASES
    assert all(r.error is None for r in reports)
    # the ladder ran everywhere, the hierarchy check on multi-level cases
    assert all(r.ladder_ok is True for r in reports)
    assert any(r.hierarchy_ok is True for r in reports)
    assert {r.mode for r in reports} == {"exact", "sampled"}


def test_slice_model_is_conservative(slice_report):
    # The sharp direction of every tolerance class: the model may
    # over-report misses, never under-report beyond the small band.
    for r in slice_report.reports:
        assert r.delta >= r.tolerance.lower, r.summary()


def test_report_json_roundtrip(slice_report):
    import json

    data = json.loads(slice_report.to_json())
    assert data["corpus_seed"] == SLICE_SEED
    assert data["n_cases"] == SLICE_CASES
    assert data["divergences"] == 0
    assert len(data["cases"]) == SLICE_CASES
    assert all("delta" in c and "tolerance" in c for c in data["cases"])


def test_run_case_reports_crash_as_error():
    import dataclasses

    case = generate_case(0, 0)
    broken = dataclasses.replace(case, source="do i = 1, 4\n")
    report = run_case(broken)
    assert report.error is not None
    assert not report.ok


# -- tolerance classes ------------------------------------------------------

DM = CacheConfig(1024, 32, 1)
KWAY = CacheConfig(1024, 32, 2)


class FakeEst:
    def __init__(self, hw):
        self._hw = hw

    def ci_halfwidth(self):
        return self._hw


def test_exact_classes_are_the_model_bands():
    t = tolerance_for("exact", DM, FakeEst(0.0))
    assert (t.lower, t.upper) == DM_BAND and t.name == "exact-dm"
    t = tolerance_for("exact", KWAY, FakeEst(0.0))
    assert (t.lower, t.upper) == ASSOC_BAND and t.name == "exact-assoc"


def test_sampled_classes_widen_by_ci_halfwidth():
    hw = 0.05
    t = tolerance_for("sampled", DM, FakeEst(hw))
    assert t.name == "sampled-dm"
    assert t.lower == pytest.approx(DM_BAND[0] - 2 * hw)
    assert t.upper == pytest.approx(DM_BAND[1] + 3 * hw)


def test_nonuniform_widens_upper_only():
    t = tolerance_for("exact", DM, FakeEst(0.0), nonuniform=0.5)
    assert t.name == "exact-dm-nonuniform"
    assert t.lower == DM_BAND[0]
    assert t.upper == pytest.approx(DM_BAND[1] + 0.5)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        tolerance_for("approximate", DM, FakeEst(0.0))


def test_nonuniform_fraction_detects_skewed_pairs():
    from repro.ir.parser import parse_nest
    from repro.layout.memory import MemoryLayout

    uniform = parse_nest(
        "real a(8,8)\n"
        "do i = 1, 8\n"
        "  do j = 1, 8\n"
        "    a(i,j) = a(i,j)\n"
        "  enddo\n"
        "enddo\n"
    )
    assert nonuniform_fraction(uniform, MemoryLayout(uniform.arrays())) == 0.0

    skewed = parse_nest(
        "real a(9,16)\n"
        "do i = 1, 8\n"
        "  do j = 1, 8\n"
        "    a(i+1,i+j) = a(1,j)\n"
        "  enddo\n"
        "enddo\n"
    )
    assert nonuniform_fraction(skewed, MemoryLayout(skewed.arrays())) == 1.0


def test_tolerance_admits():
    t = tolerance_for("exact", DM, FakeEst(0.0))
    assert t.admits(0.0) and t.admits(0.15) and t.admits(-0.06)
    assert not t.admits(0.16) and not t.admits(-0.07)


def test_geometry_parse_used_by_reports():
    g = parse_geometry("512:16:4")
    report = run_case(generate_case(0, 1))
    assert isinstance(report, CaseReport)
    assert g.l1.associativity == 4
