! repro-corpus regression
! name: diagonal_self_spatial
! geometry: 4096:32:2
! mode: exact
! sample-seed: 0
! reason: skewed reference's self-spatial reuse along (1,-1) was invisible to compute_reuse_candidates (unit vectors only; gap fixed in repro.reuse.vectors); shrunk from corpus case (1, 97)
real a(6,7)
do i = 1, 2
  do j = 1, 6
    a(j,i+j-1) = 0
  enddo
enddo
