! repro-corpus regression
! name: group_spatial_translation
! geometry: 512:32:4,4096:64:2
! mode: exact
! sample-seed: 0
! reason: group-spatial reuse at a translated iteration was invisible to compute_reuse_candidates (gap fixed in repro.reuse.vectors); shrunk from corpus case (0, 162)
real b(4,6)
real a(1,1)
do j = 1, 4
  a(1,1) = b(j,j+1) + b(j,j+2)
enddo
