"""Distributed bit-identity smoke over generated corpus nests.

Slow (spawns loopback worker processes): part of the nightly corpus
lane, deselected from the fast lane via ``-m "not slow"``.
"""

import pytest

from repro.corpus.smoke import run_distributed_smoke

pytestmark = pytest.mark.slow


def test_distributed_matches_local_bit_identically():
    results = run_distributed_smoke(0, n_cases=2, n_workers=2)
    assert len(results) == 2
    for r in results:
        assert r.identical, (
            f"{r.name}: local {r.local} != remote {r.remote}"
        )
        assert len(r.candidates) >= 1
