"""Shrinker: greedy reduction to minimal DSL repros + regression files."""

import pytest

from repro.corpus.generator import generate_case, parse_geometry
from repro.corpus.shrink import (
    ShrinkError,
    load_regression,
    normalise_source,
    shrink_source,
    write_regression,
)
from repro.ir.parser import parse_nest

BIG = """\
parameter (n = 12)
real a(n,n)
real b(n,n)
real c(n,n)
do i = 1, n
  do j = 1, n
    do k = 1, n
      a(i,j) = a(i,j) + b(i,k) + c(k,j)
    enddo
  enddo
enddo
"""


def test_shrinks_injected_failure_to_tiny_repro():
    """An 'always interesting' predicate must drive the source to the
    minimum the grammar admits — and well under the 10-line bar."""
    minimal = shrink_source(BIG, lambda src: True)
    lines = [l for l in minimal.splitlines() if l.strip()]
    assert len(lines) <= 10
    nest = parse_nest(minimal)
    assert nest.depth == 1
    assert nest.num_iterations == 1
    assert len(nest.refs) == 1


def test_shrink_preserves_predicate():
    # Interesting = still reads array b; the result must keep b but
    # drop everything else it can.
    def uses_b(src):
        return "b(" in src

    minimal = shrink_source(BIG, uses_b)
    assert "b(" in minimal
    nest = parse_nest(minimal)
    assert nest.num_iterations == 1
    # a write plus the one interesting read survive
    assert len(nest.refs) <= 2


def test_shrink_requires_failing_input():
    with pytest.raises(ShrinkError):
        shrink_source(BIG, lambda src: False)


def test_shrink_output_reparses_and_revalidates():
    from repro.ir.validate import validate_nest

    minimal = shrink_source(BIG, lambda src: parse_nest(src).depth >= 2)
    nest = parse_nest(minimal)
    validate_nest(nest)
    assert nest.depth == 2


def test_normalise_is_idempotent():
    once = normalise_source(BIG)
    assert normalise_source(once) == once


def test_regression_file_roundtrip(tmp_path):
    geom = parse_geometry("1024:32:2,8192:64:2")
    src = normalise_source(BIG)
    path = write_regression(
        tmp_path / "case.dsl", src, geom, "exact",
        sample_seed=7, reason="unit-test repro",
    )
    case = load_regression(path)
    assert case.geometry == geom
    assert case.mode == "exact"
    assert case.sample_seed == 7
    assert case.reason == "unit-test repro"
    assert parse_nest(case.source).depth == 3
    # and it is runnable through the oracle unchanged
    corpus_case = case.to_corpus_case()
    assert corpus_case.geometry == geom


def test_regression_loader_rejects_torn_file(tmp_path):
    p = tmp_path / "torn.dsl"
    p.write_text("! name: torn\nreal a(4)\n")  # no geometry/mode, no loops
    with pytest.raises(ValueError):
        load_regression(p)


def test_shrink_diverging_corpus_case_end_to_end():
    """A real divergence predicate (oracle-based) shrinks a generated
    case to a small repro that still diverges under a tightened band."""
    import dataclasses

    from repro.corpus.oracle import run_case

    case = generate_case(0, 17)  # known large-but-explained delta

    def beyond_sharp_band(src):
        rep = run_case(
            dataclasses.replace(case, source=src), ladder=False
        )
        return rep.error is None and rep.delta > 0.2

    assert beyond_sharp_band(case.source)
    minimal = shrink_source(case.source, beyond_sharp_band, name="shrunk17")
    lines = [l for l in minimal.splitlines() if l.strip()]
    assert len(lines) <= 10
    assert beyond_sharp_band(minimal)
