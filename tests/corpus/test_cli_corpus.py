"""`repro.cli corpus` subcommands."""

import json

import pytest

from repro import cli


def test_corpus_generate_single_case(capsys):
    assert cli.main(["corpus", "generate", "--case", "7"]) == 0
    out = capsys.readouterr().out
    assert "case (0, 7)" in out
    assert "do " in out and "enddo" in out
    # printed source must re-parse
    from repro.ir.parser import parse_nest

    body = "\n".join(
        l for l in out.splitlines() if not l.startswith("! ---")
    )
    parse_nest(body)


def test_corpus_generate_respects_seed_flag(capsys):
    assert cli.main(["corpus", "generate", "--case", "3", "--seed", "5"]) == 0
    out5 = capsys.readouterr().out
    assert cli.main(["corpus", "generate", "--case", "3", "--seed", "6"]) == 0
    assert out5 != capsys.readouterr().out


def test_corpus_run_small_sweep(capsys, tmp_path):
    out_path = tmp_path / "report.json"
    assert cli.main(
        ["corpus", "run", "--seed", "0", "--cases", "4", "--out", str(out_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "corpus sweep: seed=0 cases=4" in out
    assert "divergences: 0" in out
    data = json.loads(out_path.read_text())
    assert data["n_cases"] == 4 and len(data["cases"]) == 4


def test_corpus_shrink_non_diverging_case(capsys):
    assert cli.main(["corpus", "shrink", "2", "--seed", "0"]) == 0
    assert "does not diverge" in capsys.readouterr().out


def test_corpus_shrink_requires_index():
    with pytest.raises(SystemExit):
        cli.main(["corpus", "shrink"])


def test_corpus_unknown_subcommand():
    with pytest.raises(SystemExit):
        cli.main(["corpus", "fuzz"])


def test_corpus_flags_in_spec():
    for flag in ("--cases", "--case", "--out", "--distributed-smoke"):
        assert flag in cli.FLAG_SPEC
    assert "corpus" in cli.COMMANDS


def test_corpus_seed_defaults_from_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_SEED", "9")
    assert cli.main(["corpus", "generate", "--case", "0"]) == 0
    assert "case (9, 0)" in capsys.readouterr().out
