"""Tile-landscape analysis tests."""

import numpy as np
import pytest

from repro.analysis.landscape import (
    LandscapeScan,
    count_local_minima,
    scan_2d_landscape,
    tile_sensitivity,
)
from repro.cache.config import CacheConfig
from tests.conftest import make_small_mm, make_small_transpose

CACHE = CacheConfig(1024, 32, 1)


def test_scan_shape_and_best():
    nest = make_small_transpose(32)
    scan = scan_2d_landscape(nest, CACHE, points=6, n_samples=64)
    assert scan.ratios.shape == (len(scan.axis0), len(scan.axis1))
    t0, t1, best = scan.best
    assert t0 in scan.axis0 and t1 in scan.axis1
    assert best == scan.ratios.min()
    # The scan must expose a below-untiled region (tiling helps T2D).
    untiled_corner = scan.ratios[-1, -1]
    assert best <= untiled_corner


def test_scan_with_fixed_dim():
    nest = make_small_mm(16)
    scan = scan_2d_landscape(
        nest, CACHE, dims=(1, 2), points=4, fixed={0: 4}, n_samples=32
    )
    assert scan.dims == (1, 2)


def test_scan_rejects_equal_dims():
    nest = make_small_transpose(16)
    with pytest.raises(ValueError):
        scan_2d_landscape(nest, CACHE, dims=(0, -2))


def test_render_heatmap():
    scan = LandscapeScan(
        "x", (0, 1), (1, 2), (1, 2), np.array([[0.0, 0.5], [0.25, 1.0]])
    )
    text = scan.render()
    assert "T0=1" in text and "T0=2" in text
    assert "min 0.0%" in text


def test_count_local_minima_synthetic():
    # Two separated pits in a 3x3 grid... use 3x5 with minima at corners.
    r = np.array(
        [
            [0.0, 0.5, 0.4, 0.5, 0.1],
            [0.5, 0.6, 0.5, 0.6, 0.5],
            [0.3, 0.5, 0.0, 0.5, 0.3],
        ]
    )
    scan = LandscapeScan("x", (0, 1), tuple(range(3)), tuple(range(5)), r)
    assert count_local_minima(scan) >= 2


def test_real_landscape_is_multimodal():
    """§3.1's premise: the tiling objective has multiple local minima."""
    nest = make_small_transpose(64)
    scan = scan_2d_landscape(nest, CACHE, points=10, n_samples=64)
    assert count_local_minima(scan) >= 2


def test_tile_sensitivity_keys():
    nest = make_small_transpose(16)
    out = tile_sensitivity(nest, CACHE, (4, 4), n_samples=32)
    assert "T" in out
    assert "dim0+1" in out and "dim1-1" in out
    assert all(0 <= v <= 1 for v in out.values())


def test_tile_sensitivity_respects_bounds():
    nest = make_small_transpose(16)
    out = tile_sensitivity(nest, CACHE, (16, 1), n_samples=32)
    assert "dim0+1" not in out  # 17 > extent
    assert "dim1-1" not in out  # 0 < 1
