"""Associativity extension experiment tests."""

from repro.experiments.associativity import format_associativity, run_associativity
from repro.experiments.common import ExperimentConfig
from repro.ga.engine import GAConfig

TINY = ExperimentConfig(
    ga=GAConfig(population_size=6, min_generations=2, max_generations=3, seed=0),
    n_samples=48,
)


def test_associativity_rows_complete():
    rows = run_associativity(
        TINY, kernels=[("MM", 100)], associativities=(1, 2)
    )
    assert [r.associativity for r in rows] == [1, 2]
    for r in rows:
        assert 0 <= r.repl_tiling <= 1
        assert r.repl_tiling <= r.repl_no_tiling + 0.05
    text = format_associativity(rows)
    assert "Ways" in text and "MM_100" in text


def test_higher_associativity_helps_conflicts():
    """VPENTA's aliasing conflicts shrink as ways absorb contenders."""
    rows = run_associativity(
        TINY, kernels=[("VPENTA2", 128)], associativities=(1, 4)
    )
    by_ways = {r.associativity: r for r in rows}
    assert by_ways[4].repl_no_tiling <= by_ways[1].repl_no_tiling + 0.02
