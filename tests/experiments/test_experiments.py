"""Experiment harness smoke tests (tiny budgets, real pipelines)."""

import pytest

from repro.cache.config import CACHE_8KB_DM
from repro.experiments.common import ExperimentConfig, format_table, full_mode, pct
from repro.experiments.convergence import format_convergence, run_convergence
from repro.experiments.figure8 import (
    CONFLICT_KERNELS,
    FigureRow,
    format_figure,
    run_figure,
)
from repro.experiments.solver_speed import format_validation, run_solver_validation
from repro.experiments.table2 import PAPER_TABLE2, format_table2, run_table2
from repro.experiments.table3 import PAPER_TABLE3, format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4, summarize
from repro.ga.engine import GAConfig

TINY = ExperimentConfig(
    ga=GAConfig(population_size=6, min_generations=2, max_generations=3, seed=0),
    n_samples=48,
)


def test_format_table_alignment():
    out = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]], note="n")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "333" in out and "n" in out
    assert pct(0.1234) == "12.3%"


def test_full_mode_env(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    assert full_mode()
    monkeypatch.setenv("REPRO_FULL", "0")
    assert not full_mode()


def test_table2_runs_and_formats():
    rows = run_table2(TINY)
    assert len(rows) == len(PAPER_TABLE2)
    for r in rows:
        assert 0 <= r.repl_after <= r.repl_before + 0.05
        assert r.paper in PAPER_TABLE2.values()
    text = format_table2(rows)
    assert "T2D" in text and "paper" in text


def test_figure_runner_subset():
    rows = run_figure(CACHE_8KB_DM, TINY, instances=[("T2D", 100), ("MM", 100)])
    assert [r.label for r in rows] == ["T2D_100", "MM_100"]
    for r in rows:
        assert r.repl_tiling <= r.repl_no_tiling + 0.05
    assert "T2D_100" in format_figure(rows, "t")


def test_table3_single_entry():
    rows = run_table3(TINY, entries=[("BTRIX", 64, 8)])
    r = rows[0]
    assert r.kernel == "BTRIX"
    # padding must remove most of BTRIX's (pure-conflict) misses
    assert r.padding < r.original
    assert "BTRIX" in format_table3(rows)


def test_table4_summarise():
    rows = [
        FigureRow("A_1", "A", 1, 0.5, 0.005, (1,)),
        FigureRow("B_1", "B", 1, 0.5, 0.015, (1,)),
        FigureRow("C_1", "C", 1, 0.5, 0.04, (1,)),
        FigureRow("ADD", "ADD", 64, 0.6, 0.5, (1,)),  # excluded
    ]
    t = summarize(rows, 8)
    assert t.num_kernels == 3
    assert t.fractions == (pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0))
    assert "8KB" in format_table4([t])


def test_convergence_paper_budget_schedule():
    rows = run_convergence(kernels=[("MM", 32)], config=TINY, paper_budget=True)
    r = rows[0]
    assert 15 <= r.generations <= 25
    assert r.evaluations == r.generations * 30
    assert r.distinct_evaluations <= r.evaluations
    assert "Generations" in format_convergence(rows)


def test_solver_validation_within_ci():
    rows = run_solver_validation(cases=[("MM", 32), ("T2D", 64)])
    for r in rows:
        assert r.within_ci, (r.label, r.exact_miss, r.sampled_miss)
    assert "164" in format_validation(rows)


def test_conflict_kernel_set_matches_table3():
    assert CONFLICT_KERNELS == {k for (k, _, _) in PAPER_TABLE3 if k != "ADI"}
