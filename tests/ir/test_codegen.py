"""Codegen tests: the Fig. 3 source shapes."""

from repro.ir.codegen import c_source, fortran_source, python_source
from tests.conftest import make_small_transpose


def test_fortran_untiled_shape():
    src = fortran_source(make_small_transpose(8))
    assert "do i1 = 1, 8" in src
    assert "do i2 = 1, 8" in src
    assert src.count("enddo") == 2
    assert "A(" in src and "B(" in src


def test_fortran_tiled_matches_fig3():
    src = fortran_source(make_small_transpose(8), tile_sizes=(3, 4))
    # Fig. 3(b): tile loops with step, element loops with min().
    assert "do i1i1 = 1, 8, 3" in src
    assert "do i2i2 = 1, 8, 4" in src
    assert "min(i1i1+3-1, 8)" in src
    assert "min(i2i2+4-1, 8)" in src
    assert src.count("enddo") == 4


def test_c_source_tiled():
    src = c_source(make_small_transpose(8), tile_sizes=(2, 2))
    assert src.count("for (") == 4
    assert "? " in src  # min() rendered as ternary
    assert src.rstrip().endswith("}")


def test_python_source_compiles():
    src = python_source(make_small_transpose(4), tile_sizes=(2, 3))
    compile(src, "<gen>", "exec")


def test_statement_override_used():
    nest = make_small_transpose(4)
    nest = type(nest)(
        name=nest.name, loops=nest.loops, refs=nest.refs,
        statement="A(i2,i1) = B(i1,i2) * 2.0",
    )
    assert "* 2.0" in fortran_source(nest)
