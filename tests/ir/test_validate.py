"""Validation tests (§4.1 restrictions)."""

import pytest

from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read
from repro.ir.loops import Loop, LoopNest
from repro.ir.validate import ValidationError, is_analyzable, validate_nest
from tests.conftest import make_small_mm


def test_valid_nest_passes():
    validate_nest(make_small_mm(8))
    assert is_analyzable(make_small_mm(8))


def test_out_of_bounds_subscript_rejected():
    a = Array("a", (4,))
    i = AffineExpr.var("i")
    nest = LoopNest("t", (Loop("i", 1, 4),), (read(a, i + 1),))
    with pytest.raises(ValidationError):
        validate_nest(nest)
    assert not is_analyzable(nest)


def test_below_lower_bound_rejected():
    a = Array("a", (4,))
    i = AffineExpr.var("i")
    nest = LoopNest("t", (Loop("i", 1, 4),), (read(a, i - 1),))
    with pytest.raises(ValidationError):
        validate_nest(nest)


def test_interior_stencil_accepted():
    a = Array("a", (6,))
    i = AffineExpr.var("i")
    nest = LoopNest("t", (Loop("i", 2, 5),), (read(a, i - 1), read(a, i + 1)))
    validate_nest(nest)
