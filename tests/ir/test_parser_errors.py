"""Parser error paths: every rejection carries the right line number.

Companion to ``test_parser.py`` (happy paths) — here every malformed
input must raise :class:`ParseError` pointing at the offending line,
because the corpus shrinker and the ``source`` CLI command surface
these messages directly to users editing DSL files.
"""

import hashlib

import pytest

from repro.ir.parser import ParseError, nest_to_dsl, parse_nest
from repro.kernels.registry import KERNELS, get_kernel


def err(source):
    with pytest.raises(ParseError) as exc_info:
        parse_nest(source)
    return exc_info.value


def test_trailing_sign_in_subscript_rejected():
    # Regression: the term tokenizer used to silently drop a trailing
    # sign, parsing "a(i+)" as "a(i)".
    e = err(
        "real a(8)\n"
        "do i = 1, 8\n"
        "  a(i+) = 0\n"
        "enddo\n"
    )
    assert e.line_no == 3
    assert "dangling sign" in str(e)


def test_leading_double_sign_rejected():
    e = err(
        "real a(8)\n"
        "do i = 1, 8\n"
        "  a(+-i) = 0\n"
        "enddo\n"
    )
    assert e.line_no == 3


def test_unbound_parameter_in_extent():
    e = err("real a(n)\ndo i = 1, 4\n  a(i) = 0\nenddo\n")
    assert e.line_no == 1
    assert "unknown identifier" in str(e)


def test_unknown_identifier_in_subscript():
    e = err(
        "real a(8)\n"
        "do i = 1, 8\n"
        "  a(q) = 0\n"
        "enddo\n"
    )
    assert e.line_no == 3
    assert "unknown identifier 'q'" in str(e)


def test_non_rectangular_bounds_rejected():
    # Triangular loops are outside the §4.1 fragment: an induction
    # variable cannot appear in another loop's bounds.
    e = err(
        "real a(8,8)\n"
        "do i = 1, 8\n"
        "  do j = 1, i\n"
        "    a(i,j) = 0\n"
        "  enddo\n"
        "enddo\n"
    )
    assert e.line_no == 3
    assert "unknown identifier" in str(e)


def test_multiple_statements_rejected():
    e = err(
        "real a(8)\n"
        "do i = 1, 8\n"
        "  a(i) = 0\n"
        "  a(i) = 1\n"
        "enddo\n"
    )
    assert e.line_no == 4
    assert "multiple body statements" in str(e)


def test_imperfect_nesting_rejected():
    e = err(
        "real a(8,8)\n"
        "do i = 1, 8\n"
        "  a(i,1) = 0\n"
        "  do j = 1, 8\n"
        "  enddo\n"
        "enddo\n"
    )
    assert e.line_no == 4
    assert "perfectly nested" in str(e)


def test_unclosed_do_rejected():
    e = err("real a(8)\ndo i = 1, 8\n  a(i) = 0\n")
    assert "unclosed" in str(e)


def test_enddo_without_do_rejected():
    e = err("real a(8)\ndo i = 1, 8\n  a(i) = 0\nenddo\nenddo\n")
    assert e.line_no == 5
    assert "without matching do" in str(e)


def test_empty_loop_range_rejected():
    e = err("real a(8)\ndo i = 5, 2\n  a(i) = 0\nenddo\n")
    assert e.line_no == 2
    assert "empty loop range" in str(e)


def test_duplicate_loop_variable_rejected():
    e = err(
        "real a(8,8)\n"
        "do i = 1, 8\n"
        "  do i = 1, 8\n"
        "    a(i,i) = 0\n"
        "  enddo\n"
        "enddo\n"
    )
    assert e.line_no == 3
    assert "duplicate loop variable" in str(e)


def test_redeclared_array_rejected():
    e = err(
        "real a(8)\nreal a(16)\ndo i = 1, 8\n  a(i) = 0\nenddo\n"
    )
    assert e.line_no == 2
    assert "redeclared" in str(e)


def test_declaration_after_loops_rejected():
    e = err(
        "real a(8)\ndo i = 1, 8\n  real b(8)\n  a(i) = 0\nenddo\n"
    )
    # 'real b(8)' inside the loop body
    assert e.line_no == 3


def test_parameter_after_loops_rejected():
    e = err(
        "real a(8)\ndo i = 1, 8\n  parameter (n = 4)\n  a(i) = 0\nenddo\n"
    )
    assert e.line_no == 3
    assert "parameter after loops" in str(e)


def test_garbage_line_rejected_with_line_number():
    e = err("real a(8)\ndo i = 1, 8\n  continue\n  a(i) = 0\nenddo\n")
    assert e.line_no == 3
    assert "cannot parse" in str(e)


def test_no_loops_rejected():
    e = err("real a(8)\n")
    assert "no loops" in str(e)


def test_parse_error_is_value_error():
    # Callers that gate on ValueError (the shrinker, validate paths)
    # must catch ParseError too.
    assert issubclass(ParseError, ValueError)


# -- registry-wide round-trip fingerprints ----------------------------------

def _fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_every_registry_kernel_roundtrips(name):
    """render → parse → render reaches a fixpoint for every kernel.

    The first parse normalises identifier case; from then on the
    textual form (and hence its fingerprint) must be bit-stable, so
    DSL exports are canonical corpus/repro interchange.
    """
    nest = get_kernel(name, KERNELS[name].sizes[0])
    normalised = nest_to_dsl(parse_nest(nest_to_dsl(nest), name=name))
    again = nest_to_dsl(parse_nest(normalised, name=name))
    assert _fingerprint(again) == _fingerprint(normalised)
    # structure survives the trip (ref *count* may legitimately grow
    # when a builder statement mentions the same read twice — each
    # textual occurrence is an access — so compare the stable form)
    parsed = parse_nest(normalised, name=name)
    reparsed = parse_nest(again, name=name)
    assert parsed.depth == nest.depth
    assert [l.extent for l in parsed.loops] == [l.extent for l in nest.loops]
    assert len(reparsed.refs) == len(parsed.refs)
    assert [a.extents for a in reparsed.arrays()] == [
        a.extents for a in parsed.arrays()
    ]
