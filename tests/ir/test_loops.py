"""Unit tests for loops and loop nests."""

import pytest

from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read, write
from repro.ir.loops import Loop, LoopNest


def test_loop_extent():
    assert Loop("i", 1, 10).extent == 10
    assert Loop("i", 2, 2).extent == 1


def test_empty_loop_rejected():
    with pytest.raises(ValueError):
        Loop("i", 5, 4)


def _nest(n=8):
    a = Array("a", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    return LoopNest(
        "t", (Loop("i", 1, n), Loop("j", 1, n)),
        (read(a, i, j, position=0), write(a, j, i, position=1)),
    )


def test_nest_shape_properties():
    nest = _nest(8)
    assert nest.depth == 2
    assert nest.vars == ("i", "j")
    assert nest.num_iterations == 64
    assert nest.num_accesses == 128
    assert nest.bounds() == {"i": (1, 8), "j": (1, 8)}
    assert nest.loop("j").upper == 8
    with pytest.raises(KeyError):
        nest.loop("z")


def test_positions_normalised():
    a = Array("a", (4, 4))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    nest = LoopNest(
        "t", (Loop("i", 1, 4), Loop("j", 1, 4)),
        (read(a, i, j, position=7), write(a, i, j, position=9)),
    )
    assert [r.position for r in nest.refs] == [0, 1]


def test_duplicate_loop_vars_rejected():
    a = Array("a", (4,))
    with pytest.raises(ValueError):
        LoopNest("t", (Loop("i", 1, 4), Loop("i", 1, 4)),
                 (read(a, AffineExpr.var("i")),))


def test_foreign_variable_rejected():
    a = Array("a", (4,))
    with pytest.raises(ValueError):
        LoopNest("t", (Loop("i", 1, 4),), (read(a, AffineExpr.var("q")),))


def test_arrays_deduplicated():
    nest = _nest()
    assert [arr.name for arr in nest.arrays()] == ["a"]
