"""Unit tests for access programs and point maps."""

import pytest

from repro.ir.program import IdentityMap, TileMap, program_from_nest
from tests.conftest import make_small_mm


def test_identity_map():
    m = IdentityMap()
    assert m.to_original((1, 2)) == (1, 2)
    assert m.from_original((3,)) == (3,)


def test_tile_map_roundtrip_exhaustive():
    m = TileMap(lowers=(1, 1), tile_sizes=(3, 4))
    for i in range(1, 11):
        for j in range(1, 14):
            t = m.from_original((i, j))
            assert m.to_original(t) == (i, j)


def test_tile_map_coordinates():
    m = TileMap(lowers=(1,), tile_sizes=(3,))
    # i = 1 + 3t + (u-1); i=7 → t=2, u=1
    assert m.from_original((7,)) == (2, 1)
    assert m.to_original((2, 1)) == (7,)


def test_tile_map_validates():
    with pytest.raises(ValueError):
        TileMap((1,), (0,))
    with pytest.raises(ValueError):
        TileMap((1, 1), (2,))


def test_program_from_nest():
    nest = make_small_mm(6)
    prog = program_from_nest(nest)
    assert prog.space.num_points == 216
    assert prog.num_accesses == 216 * 4
    assert prog.space.vars == ("i", "j", "k")
    assert [a.name for a in prog.arrays()] == ["a", "b", "c"]


def test_program_rejects_foreign_vars():
    nest = make_small_mm(4)
    prog = program_from_nest(nest)
    from dataclasses import replace
    from repro.ir.affine import AffineExpr
    from repro.ir.arrays import read
    bad = read(nest.refs[0].array, AffineExpr.var("zz"), AffineExpr.var("i"))
    with pytest.raises(ValueError):
        replace(prog, refs=(bad,))
