"""Tests for the Fortran-like loop-nest parser."""

import pytest

from repro.ir.affine import AffineExpr
from repro.ir.parser import ParseError, parse_nest
from repro.ir.validate import validate_nest

TRANSPOSE_SRC = """
parameter (N = 16)
real A(N,N), B(N,N)
do i1 = 1, N
  do i2 = 1, N
    A(i2,i1) = B(i1,i2)
  enddo
enddo
"""


def test_parse_transpose():
    nest = parse_nest(TRANSPOSE_SRC, name="t2d")
    assert nest.name == "t2d"
    assert nest.vars == ("i1", "i2")
    assert [l.extent for l in nest.loops] == [16, 16]
    reads = [r for r in nest.refs if not r.is_write]
    writes = [r for r in nest.refs if r.is_write]
    assert len(reads) == 1 and reads[0].array.name == "b"
    assert len(writes) == 1 and writes[0].array.name == "a"
    validate_nest(nest)


def test_parse_matches_builder_semantics():
    """Parsed MM must analyse identically to the built-in builder."""
    src = """
    parameter (N = 12)
    real a(N,N), b(N,N), c(N,N)
    do i = 1, N
      do j = 1, N
        do k = 1, N
          a(i,j) = a(i,j) + b(i,k) * c(k,j)
        enddo
      enddo
    enddo
    """
    from repro.cache.config import CacheConfig
    from repro.cme.analyzer import LocalityAnalyzer
    from repro.kernels.linalg import make_mm

    parsed = parse_nest(src, name="mm12")
    built = make_mm(12)
    cache = CacheConfig(1024, 32, 1)
    ratio_p = LocalityAnalyzer(parsed, cache, seed=3).estimate().miss_ratio
    ratio_b = LocalityAnalyzer(built, cache, seed=3).estimate().miss_ratio
    assert ratio_p == ratio_b


def test_parse_affine_subscripts():
    src = """
    real x(64), y(64)
    do k = 1, 30
      x(2*k-1) = y(k+2)
    enddo
    """
    nest = parse_nest(src)
    read_ref = nest.refs[0]
    assert read_ref.subscripts[0] == AffineExpr.var("k") + 2
    write_ref = nest.refs[-1]
    assert write_ref.subscripts[0] == AffineExpr.var("k") * 2 - 1


def test_element_size_suffix():
    src = """
    real*4 a(8)
    do i = 1, 8
      a(i) = a(i)
    enddo
    """
    nest = parse_nest(src)
    assert nest.arrays()[0].element_size == 4


def test_comments_and_blank_lines_ignored():
    src = """
    ! a comment
    real a(4)

    do i = 1, 4   ! trailing comment
      a(i) = a(i)
    enddo
    """
    assert parse_nest(src).depth == 1


@pytest.mark.parametrize(
    "src,fragment",
    [
        ("do i = 1, 4\nenddo", "no body"),
        ("real a(4)\na(i) = a(i)", "no loops"),
        ("real a(4)\ndo i = 1, 4\n  a(i) = a(i)\n", "unclosed"),
        ("real a(4)\ndo i = 1, 4\n  a(i) = b(i)\nenddo", "undeclared"),
        ("real a(4)\ndo i = 1, 4\n  a(q) = a(i)\nenddo", "unknown identifier"),
        ("real a(4)\ndo i = 1, 4\ndo i = 1, 4\n a(i)=a(i)\nenddo\nenddo", "duplicate"),
        ("real a(4)\ndo i = 4, 1\n a(i)=a(i)\nenddo", "empty loop"),
        ("real a(4)\ndo i = 1, 4\n a(i)=a(i)\n a(i)=a(i)\nenddo", "multiple body"),
        ("real a(4)\ndo i = 1, 4\n a(i*i) = a(i)\nenddo", "cannot parse term"),
        ("real a(4)\nreal a(5)\ndo i=1,4\n a(i)=a(i)\nenddo", "redeclared"),
    ],
)
def test_parse_errors(src, fragment):
    with pytest.raises(ParseError) as exc:
        parse_nest(src)
    assert fragment.split()[0] in str(exc.value)


def test_imperfect_nest_rejected():
    src = """
    real a(4,4)
    do i = 1, 4
      a(i,1) = a(i,1)
    enddo
    do j = 1, 4
      a(1,j) = a(1,j)
    enddo
    """
    with pytest.raises(ParseError):
        parse_nest(src)


def test_parse_error_reports_line_number():
    src = "real a(4)\ndo i = 1, 4\n  ???\nenddo"
    with pytest.raises(ParseError) as exc:
        parse_nest(src)
    assert exc.value.line_no == 3
