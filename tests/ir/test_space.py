"""Unit tests for iteration spaces (unions of boxes)."""

import numpy as np
import pytest

from repro.ir.space import IterationSpace
from repro.polyhedra.box import Box


def two_region_space() -> IterationSpace:
    # Fig. 2(b): strip-mining 1..7 by 3 → full region + boundary region.
    return IterationSpace(
        ("t", "u"),
        (Box((0, 1), (1, 3)), Box((2, 1), (2, 1))),
    )


def test_num_points_and_contains():
    sp = two_region_space()
    assert sp.num_points == 7
    assert sp.contains((0, 1)) and sp.contains((2, 1))
    assert not sp.contains((2, 2))
    assert sp.region_index((1, 3)) == 0
    assert sp.region_index((2, 1)) == 1
    with pytest.raises(ValueError):
        sp.region_index((5, 5))


def test_unrank_covers_every_point_once():
    sp = two_region_space()
    pts = {sp.unrank(i) for i in range(sp.num_points)}
    assert len(pts) == 7
    assert all(sp.contains(p) for p in pts)
    with pytest.raises(IndexError):
        sp.unrank(7)


def test_all_points_lex_sorted_globally():
    sp = two_region_space()
    pts = sp.all_points_lex()
    assert pts == sorted(pts)
    assert len(pts) == 7


def test_coordinate_matrix_matches_point_list():
    sp = two_region_space()
    mat = sp.coordinate_matrix_lex()
    assert mat.shape == (7, 2)
    assert [tuple(r) for r in mat] == sp.all_points_lex()


def test_sample_points_deterministic():
    sp = two_region_space()
    rng1 = np.random.default_rng(7)
    rng2 = np.random.default_rng(7)
    assert sp.sample_points(10, rng1) == sp.sample_points(10, rng2)


def test_single_box_constructor():
    sp = IterationSpace.single_box(("i", "j"), (1, 1), (3, 4))
    assert sp.num_points == 12
    assert sp.bounding_box() == Box((1, 1), (3, 4))


def test_empty_regions_dropped():
    sp = IterationSpace(("i",), (Box((1,), (0,)), Box((1,), (2,))))
    assert len(sp.regions) == 1
    assert sp.num_points == 2
