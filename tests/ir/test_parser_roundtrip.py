"""DSL round-trips: builder → source → parser → same analysis."""

import pytest

from repro.cache.config import CacheConfig
from repro.cme.analyzer import LocalityAnalyzer
from repro.ir.parser import nest_to_dsl, parse_nest
from repro.kernels.registry import KERNELS, get_kernel

#: Kernels whose statements the default pretty-printer regenerates
#: faithfully enough to re-parse (single write, plain reads).
ROUNDTRIPPABLE = [
    ("T2D", 24),
    ("T3DJIK", 8),
    ("T3DIKJ", 8),
    ("MM", 10),
    ("JACOBI3D", 10),
    ("ADI", 16),
    ("VPENTA2", 16),
]


@pytest.mark.parametrize("name,size", ROUNDTRIPPABLE)
def test_roundtrip_preserves_structure(name, size):
    nest = get_kernel(name, size)
    src = nest_to_dsl(nest)
    parsed = parse_nest(src, name=nest.name)
    assert parsed.vars == nest.vars
    assert [l.extent for l in parsed.loops] == [l.extent for l in nest.loops]
    assert len(parsed.refs) == len(nest.refs)
    assert [a.extents for a in parsed.arrays()] == [
        a.extents for a in nest.arrays()
    ]


@pytest.mark.parametrize("name,size", ROUNDTRIPPABLE[:4])
def test_roundtrip_preserves_analysis(name, size):
    """Same sampled miss ratio before and after the text round-trip.

    Reference *order* inside the statement may differ after rendering
    (reads in textual order, write last), which legitimately changes
    same-iteration interference a little; structural equality above is
    exact, analysis equality is asserted within a small band.
    """
    nest = get_kernel(name, size)
    parsed = parse_nest(nest_to_dsl(nest), name=nest.name)
    cache = CacheConfig(1024, 32, 1)
    a = LocalityAnalyzer(nest, cache, seed=2).estimate().miss_ratio
    b = LocalityAnalyzer(parsed, cache, seed=2).estimate().miss_ratio
    assert abs(a - b) <= 0.05


def test_dsl_export_readable():
    src = nest_to_dsl(get_kernel("MM", 10))
    assert "real a(10,10)" in src
    assert "do i = 1, 10" in src
    assert "enddo" in src
