"""Unit tests for integer affine expressions."""

import pytest

from repro.ir.affine import AffineExpr


def test_construction_drops_zero_coeffs():
    e = AffineExpr({"i": 0, "j": 2}, 5)
    assert e.coeffs == {"j": 2}
    assert e.const == 5


def test_var_and_constant_constructors():
    assert AffineExpr.var("i").coeff("i") == 1
    assert AffineExpr.var("i", 3).coeff("i") == 3
    assert AffineExpr.constant(7).is_constant
    assert AffineExpr.as_expr(4) == AffineExpr.constant(4)
    assert AffineExpr.as_expr(AffineExpr.var("x")) == AffineExpr.var("x")


def test_addition_merges_terms():
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    e = i * 2 + j - i + 3
    assert e.coeff("i") == 1
    assert e.coeff("j") == 1
    assert e.const == 3


def test_addition_cancels_to_constant():
    i = AffineExpr.var("i")
    e = i - i + 1
    assert e.is_constant
    assert e.const == 1


def test_scalar_multiplication():
    i = AffineExpr.var("i")
    e = (i + 2) * 3
    assert e.coeff("i") == 3
    assert e.const == 6
    assert (2 * i).coeff("i") == 2


def test_negation_and_rsub():
    i = AffineExpr.var("i")
    e = 5 - i
    assert e.coeff("i") == -1
    assert e.const == 5
    assert (-e).coeff("i") == 1


def test_evaluate():
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    e = 3 * i + 2 * j + 1
    assert e.evaluate({"i": 4, "j": 5}) == 23


def test_evaluate_requires_bindings():
    e = AffineExpr.var("i")
    with pytest.raises(KeyError):
        e.evaluate({})


def test_substitute_with_expression():
    i, t, u = AffineExpr.var("i"), AffineExpr.var("t"), AffineExpr.var("u")
    e = 5 * i + 1
    sub = e.substitute({"i": 4 * t + u})
    assert sub.coeff("t") == 20
    assert sub.coeff("u") == 5
    assert sub.const == 1


def test_substitute_with_int():
    e = AffineExpr.var("i") * 3 + AffineExpr.var("j")
    sub = e.substitute({"i": 2})
    assert sub == AffineExpr.var("j") + 6


def test_coeff_vector_order():
    e = AffineExpr({"i": 1, "k": 3})
    assert e.coeff_vector(("i", "j", "k")) == (1, 0, 3)


def test_range_over_signs():
    e = AffineExpr({"i": 2, "j": -3}, 1)
    lo, hi = e.range_over({"i": (0, 4), "j": (1, 2)})
    assert lo == 0 + 2 * 0 - 3 * 2 + 1
    assert hi == 2 * 4 - 3 * 1 + 1


def test_equality_and_hash():
    a = AffineExpr({"i": 1}, 2)
    b = AffineExpr.var("i") + 2
    assert a == b
    assert hash(a) == hash(b)
    assert a != AffineExpr.var("i")
    assert AffineExpr.constant(3) == 3


def test_immutability():
    e = AffineExpr.var("i")
    with pytest.raises(AttributeError):
        e.const = 5


def test_pickle_roundtrip():
    """Process-pool paths ship expressions through pickle; the slots +
    immutability guard used to break unpickling (worker-side crash)."""
    import pickle

    e = AffineExpr({"i": 2, "j": -1}, 7)
    clone = pickle.loads(pickle.dumps(e))
    assert clone == e
    assert hash(clone) == hash(e)


def test_repr_roundtrip_readability():
    e = AffineExpr({"i": 1, "j": -2}, 3)
    s = repr(e)
    assert "i" in s and "j" in s and "3" in s
    assert repr(AffineExpr.constant(0)) == "0"
