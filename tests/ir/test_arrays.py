"""Unit tests for arrays, layouts and references."""

import pytest

from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, ArrayRef, read, write


def test_column_major_strides():
    a = Array("a", (10, 20), element_size=8, order="F")
    assert a.strides_bytes() == (8, 80)


def test_row_major_strides():
    a = Array("a", (10, 20), element_size=8, order="C")
    assert a.strides_bytes() == (160, 8)


def test_strides_with_intra_padding():
    a = Array("a", (10, 20), element_size=8, order="F")
    assert a.strides_bytes((3, 0)) == (8, 8 * 13)


def test_size_bytes_includes_padding():
    a = Array("a", (10, 10), element_size=4)
    assert a.size_bytes() == 400
    assert a.size_bytes((2, 0)) == 4 * 12 * 10


def test_default_element_size_is_real8():
    assert Array("a", (4,)).element_size == 8


def test_lower_bounds_default_fortran():
    a = Array("a", (5, 5))
    assert a.lower_bounds == (1, 1)


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        Array("a", (0,))
    with pytest.raises(ValueError):
        Array("a", (4,), element_size=0)
    with pytest.raises(ValueError):
        Array("a", (4,), order="X")
    with pytest.raises(ValueError):
        Array("a", (4, 4), lower_bounds=(1,))


def test_ref_rank_checked():
    a = Array("a", (4, 4))
    with pytest.raises(ValueError):
        ArrayRef(a, (AffineExpr.var("i"),))


def test_offset_expr_column_major():
    a = Array("a", (10, 10), element_size=8)
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    ref = read(a, i, j)
    off = ref.offset_expr()
    # (i-1)*8 + (j-1)*80
    assert off.coeff("i") == 8
    assert off.coeff("j") == 80
    assert off.const == -88
    assert off.evaluate({"i": 1, "j": 1}) == 0


def test_offset_expr_with_padding_changes_strides():
    a = Array("a", (10, 10), element_size=8)
    ref = read(a, AffineExpr.var("i"), AffineExpr.var("j"))
    off = ref.offset_expr((2, 0))
    assert off.coeff("j") == 8 * 12


def test_read_write_helpers():
    a = Array("a", (4,))
    r = read(a, AffineExpr.var("i"), position=2)
    w = write(a, AffineExpr.var("i"))
    assert not r.is_write and r.position == 2
    assert w.is_write
    assert r.variables() == frozenset({"i"})


def test_int_subscripts_coerced():
    a = Array("a", (4, 4))
    r = read(a, 2, AffineExpr.var("i"))
    assert r.subscripts[0] == AffineExpr.constant(2)
