"""Parser/exporter idempotence: parse → export → parse is stable."""

import pytest

from repro.ir.parser import nest_to_dsl, parse_nest

SOURCES = [
    """
    parameter (N = 9)
    real A(N,N), B(N,N)
    do i = 1, N
      do j = 1, N
        A(j,i) = B(i,j)
      enddo
    enddo
    """,
    """
    real*4 x(32), y(32), z(32)
    do k = 2, 30
      z(k) = x(k-1) + y(k+1)
    enddo
    """,
    """
    real u(8,8,8)
    do a = 1, 8
      do b = 1, 8
        do c = 1, 8
          u(c,b,a) = u(c,b,a)
        enddo
      enddo
    enddo
    """,
]


@pytest.mark.parametrize("src", SOURCES)
def test_parse_export_parse_fixed_point(src):
    n1 = parse_nest(src)
    exported = nest_to_dsl(n1)
    n2 = parse_nest(exported)
    assert n2.vars == n1.vars
    assert [(l.lower, l.upper) for l in n2.loops] == [
        (l.lower, l.upper) for l in n1.loops
    ]
    assert [a.extents for a in n2.arrays()] == [a.extents for a in n1.arrays()]
    assert [a.element_size for a in n2.arrays()] == [
        a.element_size for a in n1.arrays()
    ]
    # Second export is bit-identical (true fixed point).
    assert nest_to_dsl(n2) == exported


@pytest.mark.parametrize("src", SOURCES)
def test_roundtrip_reference_structure(src):
    n1 = parse_nest(src)
    n2 = parse_nest(nest_to_dsl(n1))
    assert len(n1.refs) == len(n2.refs)
    w1 = [r.array.name for r in n1.refs if r.is_write]
    w2 = [r.array.name for r in n2.refs if r.is_write]
    assert w1 == w2
