"""The telemetry recorder: write API, schema stamping, the no-op
disabled mode, and the (host, pid, seq) merge order."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_RECORDER,
    SCHEMA_VERSION,
    MemorySink,
    merge_events,
    validate_events,
)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    """Every test starts disabled and leaves nothing installed."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def test_disabled_by_default_returns_null_singleton():
    assert telemetry.recorder() is NULL_RECORDER
    assert not telemetry.active()
    assert not telemetry.recorder().enabled
    # the whole write API is a no-op and drain yields nothing
    with telemetry.recorder().span("x", a=1):
        telemetry.recorder().count("c")
        telemetry.recorder().gauge("g", 1.0)
        telemetry.recorder().event("e")
    assert telemetry.drain_events() == []


def test_write_api_emits_schema_valid_events():
    sink = MemorySink()
    rec = telemetry.configure(sink=sink, default=True)
    assert rec is telemetry.recorder() and rec.enabled
    rec.count("evaluator.new_solves", 3)
    rec.gauge("search.best_objective", 1.5, step=2)
    rec.event("worker.serve", capacity=4)
    with rec.span("search.wave", step=1):
        with rec.span("search.propose"):
            pass
    events = sink.drain()
    assert validate_events(events) == []
    assert [e["kind"] for e in events] == [
        "count", "gauge", "event", "span", "span"
    ]
    assert all(e["v"] == SCHEMA_VERSION for e in events)
    assert [e["seq"] for e in events] == list(range(5))
    # inner span closes first and links to its parent
    inner, outer = events[3], events[4]
    assert inner["name"] == "search.propose"
    assert inner["parent"] == outer["span"]
    assert outer["parent"] is None
    assert outer["dur"] >= inner["dur"] >= 0
    assert events[1]["attrs"] == {"step": 2}


def test_counters_accumulate_and_gauges_overwrite():
    rec = telemetry.configure(default=True)
    rec.count("hits")
    rec.count("hits", 4)
    rec.gauge("best", 9.0)
    rec.gauge("best", 3.0)
    assert rec.counters["hits"] == 5
    assert rec.gauges["best"] == 3.0


def test_env_zero_beats_caller_default(tmp_path, monkeypatch):
    """Explicit REPRO_TELEMETRY=0 forces telemetry off even when
    --trace asks for it: configure installs nothing, creates no file."""
    trace = tmp_path / "run.jsonl"
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert telemetry.enabled(default=True) is False
    assert telemetry.configure(str(trace), default=True) is None
    assert not telemetry.active()
    assert not trace.exists()


def test_env_one_beats_caller_default(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert telemetry.enabled(default=False) is True
    assert telemetry.configure() is not None


def test_jsonl_sink_round_trip(tmp_path):
    trace = tmp_path / "run.jsonl"
    rec = telemetry.configure(str(trace), default=True)
    rec.count("x", 2)
    rec.event("done")
    telemetry.shutdown()
    lines = trace.read_text().splitlines()
    assert len(lines) == 2
    events = [json.loads(line) for line in lines]
    assert validate_events(events) == []
    assert telemetry.load_events(trace) == events


def test_nonfinite_values_stay_json_strict(tmp_path):
    trace = tmp_path / "run.jsonl"
    rec = telemetry.configure(str(trace), default=True)
    rec.gauge("portfolio.member_best", float("inf"), slot=0)
    telemetry.shutdown()
    evt = json.loads(trace.read_text())  # strict JSON must parse it
    assert evt["value"] == "inf"


def test_merge_is_independent_of_batch_order():
    batches = []
    for host, pid in (("a:1", 10), ("b:2", 20), ("local", 5)):
        batches.append(
            [
                {"v": 1, "kind": "event", "name": f"e{i}", "ts": 0.0,
                 "host": host, "pid": pid, "seq": i}
                for i in range(3)
            ]
        )
    forward = merge_events(batches)
    backward = merge_events(reversed(batches))
    assert forward == backward
    assert [e["seq"] for e in forward if e["host"] == "a:1"] == [0, 1, 2]


def test_ingest_preserves_foreign_stamps():
    rec = telemetry.configure(default=True)
    foreign = [
        {"v": 1, "kind": "count", "name": "remote", "ts": 1.0,
         "host": "w:9", "pid": 99, "seq": 7, "value": 1, "attrs": {}}
    ]
    rec.count("local.first")
    telemetry.ingest(foreign)
    events = telemetry.drain_events()
    shipped = [e for e in events if e["host"] == "w:9"]
    assert shipped == foreign  # host/pid/seq untouched, no re-stamping


def test_ingest_without_recorder_is_a_no_op():
    telemetry.ingest([{"kind": "event", "name": "x"}])  # must not raise
    assert telemetry.drain_events() == []


def test_memory_sink_bounds_and_counts_drops():
    sink = MemorySink(limit=4)
    rec = telemetry.configure(sink=sink, default=True)
    for i in range(10):
        rec.count("c", i)
    assert len(sink.events) == 4
    assert sink.dropped == 6
