"""Chrome ``trace_event`` export: host lanes, span bars, counter
levels, instants — and a file Perfetto can actually load."""

import json

from repro.telemetry import chrome_trace, write_chrome_trace


def _evt(kind, name, host, seq, ts, **extra):
    evt = {"v": 1, "kind": kind, "name": name, "ts": ts,
           "host": host, "pid": 42, "seq": seq, "attrs": {}}
    evt.update(extra)
    return evt


def test_each_host_gets_a_named_pid_lane():
    events = [
        _evt("event", "worker.serve", "b:2", 0, 10.0),
        _evt("event", "worker.serve", "a:1", 0, 10.5),
    ]
    trace = chrome_trace(events)["traceEvents"]
    meta = [t for t in trace if t["ph"] == "M"]
    assert [m["args"]["name"] for m in meta] == ["a:1", "b:2"]  # sorted
    assert [m["pid"] for m in meta] == [1, 2]
    instants = [t for t in trace if t["ph"] == "i"]
    assert {t["pid"] for t in instants} == {1, 2}
    assert all(t["s"] == "g" for t in instants)


def test_spans_become_complete_events_normalised_to_micros():
    events = [
        _evt("span", "search.wave", "local", 0, 100.0,
             dur=0.25, span=0, parent=None),
        _evt("span", "search.propose", "local", 1, 100.1,
             dur=0.05, span=1, parent=0),
    ]
    trace = chrome_trace(events)["traceEvents"]
    bars = [t for t in trace if t["ph"] == "X"]
    assert bars[0]["ts"] == 0.0  # earliest event is the origin
    assert bars[0]["dur"] == 0.25 * 1e6
    assert abs(bars[1]["ts"] - 0.1 * 1e6) < 1.0


def test_counts_accumulate_to_levels_per_host():
    events = [
        _evt("count", "cascade.points", "a:1", 0, 1.0, value=10),
        _evt("count", "cascade.points", "b:2", 0, 1.1, value=5),
        _evt("count", "cascade.points", "a:1", 1, 1.2, value=7),
        _evt("gauge", "search.best_objective", "local", 0, 1.3, value=2.5),
        _evt("gauge", "portfolio.member_best", "local", 1, 1.4, value="inf"),
    ]
    trace = chrome_trace(events)["traceEvents"]
    counters = [t for t in trace if t["ph"] == "C"]
    points_a = [t["args"]["points"] for t in counters
                if t["name"] == "cascade.points" and t["pid"] == 1]
    assert points_a == [10, 17]  # running total, per host
    # gauges pass through; non-numeric ("inf" repr) values are skipped
    assert [t["args"] for t in counters if "best_objective" in t["name"]] == [
        {"best_objective": 2.5}
    ]
    assert not any("member_best" in t["name"] for t in counters)


def test_empty_stream_yields_an_empty_trace():
    assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


def test_write_chrome_trace_returns_record_count(tmp_path):
    out = tmp_path / "timeline.json"
    n = write_chrome_trace(
        str(out),
        [_evt("span", "s", "local", 0, 1.0, dur=0.1, span=0, parent=None)],
    )
    assert n == 2  # one metadata record + one span bar
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == 2
