"""Trace read-back: JSONL loading, schema validation, run summaries —
all from the event stream alone (the `repro.cli report` contract)."""

import pytest

from repro.telemetry import load_events, summarize_events, validate_events


def _evt(kind, name, seq, host="local", **extra):
    evt = {"v": 1, "kind": kind, "name": name, "ts": 1.0 + seq,
           "host": host, "pid": 7, "seq": seq, "attrs": {}}
    evt.update(extra)
    return evt


def test_load_events_reports_the_malformed_line(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"v":1}\n{oops\n')
    with pytest.raises(ValueError, match=r"t\.jsonl:2"):
        load_events(str(path))


def test_load_events_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"v":1}\n\n{"v":1}\n')
    assert len(load_events(str(path))) == 2


def test_validate_flags_each_schema_break():
    good = _evt("count", "c", 0, value=1)
    problems = validate_events(
        [
            good,
            {"kind": "count"},                      # missing keys
            _evt("blip", "x", 1),                   # unknown kind
            _evt("span", "s", 2),                   # span without dur/id
            _evt("count", "c", 3),                  # count without value
            _evt("count", "c", 3, value=1),         # duplicate seq in lane
        ]
    )
    assert validate_events([good]) == []
    assert len(problems) == 6  # the bare span breaks twice: dur AND id
    assert any("missing keys" in p for p in problems)
    assert any("unknown kind" in p for p in problems)
    assert any("valid dur" in p for p in problems)
    assert any("without a value" in p for p in problems)
    assert any("duplicate seq" in p for p in problems)


def test_validate_keeps_lanes_separate():
    """Same seq on different (host, pid) lanes is the normal case."""
    assert validate_events(
        [
            _evt("event", "e", 0, host="a:1"),
            _evt("event", "e", 0, host="b:2"),
        ]
    ) == []


def test_summary_rolls_up_every_section():
    events = [
        _evt("span", "search.wave", 0, dur=0.5, span=0, parent=None),
        _evt("span", "search.wave", 1, dur=1.5, span=1, parent=None),
        _evt("count", "evaluator.new_solves", 2, value=12),
        _evt("count", "wire.request_bytes", 3, value=2048,
             attrs={"op": "eval", "host": "a:1"}),
        _evt("count", "wire.request_bytes", 4, value=1024,
             attrs={"op": "eval", "host": "a:1"}),
        _evt("gauge", "search.best_objective", 5, value=3.25),
        _evt("event", "wire.redispatch", 6, host="a:1"),
    ]
    text = summarize_events(events)
    assert "7 events from 2 host(s): a:1, local" in text
    # span rollup: n=2, total 2.00s, mean 1.00s
    assert "search.wave" in text and "2.00s" in text and "1.00s" in text
    assert "evaluator.new_solves" in text and "12" in text
    # the wire counter gets a per-op frames/bytes breakdown
    assert "wire requests" in text and "eval" in text and "3072" in text
    assert "search.best_objective" in text and "3.25" in text
    assert "wire.redispatch" in text


def test_summary_of_an_empty_stream_is_still_a_line():
    assert summarize_events([]).startswith("0 events from 0 host(s)")
