"""CLI surface of the telemetry subsystem: ``--trace``/``--chrome``
on search, the default evals summary with ``--quiet``, and the
``report`` command working from the JSONL alone."""

import json

import pytest

from repro import cli, telemetry
from repro.telemetry import load_events, validate_events


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def _search(tmp_path, *extra):
    trace = tmp_path / "run.jsonl"
    rc = cli.main(
        ["search", "T2D", "48", "--strategy", "random", "--budget", "12",
         "--trace", str(trace), *extra]
    )
    return rc, trace


def test_trace_flag_writes_a_valid_jsonl_stream(tmp_path, capsys):
    rc, trace = _search(tmp_path)
    assert rc == 0
    events = load_events(str(trace))
    assert events and validate_events(events) == []
    names = {e["name"] for e in events}
    assert {"search.wave", "search.propose", "search.evaluate",
            "search.resolve"} <= names
    assert "evaluator.new_solves" in names
    assert "cascade.points" in names  # objective's solver counters
    # the recorder is torn down after the run
    assert not telemetry.active()


def test_search_summary_includes_evals_line_by_default(capsys):
    assert cli.main(["search", "T2D", "48", "--strategy", "random",
                     "--budget", "12"]) == 0
    out = capsys.readouterr().out
    assert "evals:" in out
    assert "memo hits" in out and "new solves" in out and "store hits" in out


def test_quiet_suppresses_the_diagnostics(capsys):
    assert cli.main(["search", "T2D", "48", "--strategy", "random",
                     "--budget", "12", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "[random]" in out  # the one-line result stays
    assert "evals:" not in out and "steps:" not in out


def test_chrome_export_rides_on_trace(tmp_path, capsys):
    out_path = tmp_path / "timeline.json"
    rc, trace = _search(tmp_path, "--chrome", str(out_path))
    assert rc == 0
    assert "chrome timeline" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]
    assert any(t["ph"] == "X" for t in doc["traceEvents"])


def test_chrome_without_trace_is_an_error():
    with pytest.raises(SystemExit, match="--chrome"):
        cli.main(["search", "T2D", "48", "--budget", "12",
                  "--chrome", "out.json"])


def test_env_zero_wins_over_trace_flag(tmp_path, monkeypatch, capsys):
    """REPRO_TELEMETRY=0 beats --trace: same search, no file at all."""
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    rc, trace = _search(tmp_path)
    assert rc == 0
    assert not trace.exists()


def test_report_command_summarises_from_the_jsonl_alone(tmp_path, capsys):
    _search(tmp_path)
    capsys.readouterr()
    assert cli.main(["report", str(tmp_path / "run.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "host(s): local" in out
    assert "search.wave" in out
    assert "evaluator.new_solves" in out
    assert "cascade.points" in out


def test_report_command_exports_chrome(tmp_path, capsys):
    _search(tmp_path)
    out_path = tmp_path / "timeline.json"
    assert cli.main(["report", str(tmp_path / "run.jsonl"),
                     "--chrome", str(out_path)]) == 0
    assert json.loads(out_path.read_text())["traceEvents"]


def test_report_flags_schema_violations(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v":1,"kind":"blip"}\n')
    assert cli.main(["report", str(bad)]) == 1
    assert "missing keys" in capsys.readouterr().out


def test_report_without_a_path_is_usage_error():
    with pytest.raises(SystemExit):
        cli.main(["report"])
