"""CLI smoke tests."""

import pytest

from repro import cli


def test_help(capsys):
    assert cli.main([]) == 0
    out = capsys.readouterr().out
    assert "table2" in out and "REPRO_FULL" in out


def test_help_after_subcommand(capsys):
    assert cli.main(["search", "--help"]) == 0
    assert "Uniform flags" in capsys.readouterr().out


def test_validate_command(capsys):
    assert cli.main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "CME sampling vs exact simulation" in out
    assert "164" in out


def test_unknown_command_is_noop(capsys):
    assert cli.main(["nonsense"]) == 0
    out = capsys.readouterr().out
    assert "experiment runner" in out


def test_kernels_listing(capsys):
    assert cli.main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "T2D" in out and "VPENTA1" in out and "depth=4" in out
    assert out.count("\n") == 17


def test_source_export(capsys):
    assert cli.main(["source", "MM", "8"]) == 0
    out = capsys.readouterr().out
    assert "do i = 1, 8" in out
    # The exported source must re-parse.
    from repro.ir.parser import parse_nest

    parse_nest(out)


def test_landscape_render(capsys):
    assert cli.main(["landscape", "T2D", "64"]) == 0
    out = capsys.readouterr().out
    assert "replacement ratio over tile dims" in out
    assert "grid-local minima:" in out


def test_flag_parsing():
    positional, flags = cli.parse_flags(
        ["search", "--workers", "4", "MM", "--strategy", "hillclimb",
         "500", "--resume", "x.ck"]
    )
    assert positional == ["search", "MM", "500"]
    assert flags == {"workers": 4, "strategy": "hillclimb", "resume": "x.ck"}


def test_flag_parsing_rejects_bad_values():
    with pytest.raises(SystemExit):
        cli.parse_flags(["--workers", "lots"])
    with pytest.raises(SystemExit):
        cli.parse_flags(["search", "--workers"])


def test_cascade_budget_flags_set_env(capsys):
    import os

    saved = {
        knob.name: os.environ.pop(knob.name, None)
        for knob in cli._cascade_knobs().values()
    }
    try:
        assert cli.main(
            ["kernels", "--cascade-enum-limit", "1024",
             "--cascade-abs-budget", "128"]
        ) == 0
        capsys.readouterr()
        assert os.environ["REPRO_CASCADE_BUDGET_ENUM"] == "1024"
        assert os.environ["REPRO_CASCADE_BUDGET_ABS"] == "128"
        assert "REPRO_CASCADE_BUDGET_PARTIAL" not in os.environ
        # the tester picks the env overrides up
        from repro.polyhedra.congruence import CongruenceTester

        tester = CongruenceTester()
        assert tester.enum_limit == 1024 and tester.abs_search_budget == 128
    finally:
        for env, val in saved.items():
            if val is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = val


def test_flag_parsing_rejects_unknown_flags():
    with pytest.raises(SystemExit, match="unknown flag"):
        cli.parse_flags(["table2", "--worker", "4"])  # typo
    # --help stays a positional so the usage text still prints
    assert cli.parse_flags(["--help"]) == (["--help"], {})


def test_search_resume_refuses_other_kernel(tmp_path):
    ck = str(tmp_path / "fp.ck")
    assert (
        cli.main(["search", "T2D", "48", "--strategy", "random",
                  "--budget", "10", "--checkpoint", ck])
        == 0
    )
    with pytest.raises(ValueError, match="captured against"):
        cli.main(["search", "T2D", "64", "--resume", ck])


def test_search_command_runs_any_strategy(capsys):
    assert (
        cli.main(["search", "T2D", "48", "--strategy", "random",
                  "--budget", "20", "--seed", "1"])
        == 0
    )
    out = capsys.readouterr().out
    assert "[random]" in out and "T=" in out
    assert "consumed_distinct=" in out


def test_search_command_checkpoint_resume(tmp_path, capsys):
    ck = str(tmp_path / "cli.ck")
    assert (
        cli.main(["search", "T2D", "48", "--strategy", "hillclimb",
                  "--budget", "25", "--checkpoint", ck])
        == 0
    )
    first = capsys.readouterr().out
    assert (
        cli.main(["search", "T2D", "48", "--resume", ck]) == 0
    )
    resumed = capsys.readouterr().out
    assert first.splitlines()[0] == resumed.splitlines()[0]


def test_portfolio_flag_parsing():
    positional, flags = cli.parse_flags(
        ["search", "MM", "--strategy", "portfolio", "--members",
         "ga,hillclimb", "--restart", "stagnation:5",
         "--portfolio-mode", "race"]
    )
    assert positional == ["search", "MM"]
    assert flags == {
        "strategy": "portfolio",
        "members": "ga,hillclimb",
        "restart": "stagnation:5",
        "portfolio_mode": "race",
    }


def test_search_command_runs_portfolio(capsys):
    assert (
        cli.main(["search", "T2D", "48", "--strategy", "portfolio",
                  "--members", "hillclimb,random", "--restart",
                  "stagnation:4", "--budget", "16", "--seed", "1"])
        == 0
    )
    out = capsys.readouterr().out
    assert "[portfolio]" in out and "T=" in out


def test_portfolio_command_prints_comparison(capsys):
    assert (
        cli.main(["portfolio", "T2D", "48", "--budget", "12",
                  "--members", "hillclimb,random"])
        == 0
    )
    out = capsys.readouterr().out
    assert "Portfolio meta-search vs single strategies" in out
    assert "portfolio[interleave]" in out
    assert "Cache sharing" in out


def test_workers_flag_reaches_experiment_config(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert cli.main(["nonsense", "--workers", "3"]) == 0
    out = capsys.readouterr().out
    assert "3 workers" in out


def test_distributed_flag_parsing():
    positional, flags = cli.parse_flags(
        ["search", "MM", "--backend", "cluster", "--hosts", "a:1,b:2",
         "--memo", "/tmp/m.bin", "--port", "0", "--capacity", "2",
         "--bind", "0.0.0.0"]
    )
    assert positional == ["search", "MM"]
    assert flags["backend"] == "cluster"
    assert flags["hosts"] == "a:1,b:2"
    assert flags["memo"] == "/tmp/m.bin"
    assert flags["port"] == 0 and flags["capacity"] == 2
    assert flags["bind"] == "0.0.0.0"


def test_search_cluster_backend_requires_hosts():
    from repro.search.tiling import search_tiling
    from tests.conftest import make_small_transpose
    from repro.cache.config import CacheConfig

    with pytest.raises(ValueError, match="REPRO_HOSTS"):
        search_tiling(
            make_small_transpose(16), CacheConfig(1024, 32, 1),
            backend="cluster",
        )
    with pytest.raises(ValueError, match="unknown backend"):
        search_tiling(
            make_small_transpose(16), CacheConfig(1024, 32, 1),
            backend="carrier-pigeon",
        )


def test_search_command_memo_backend_reports_warm_start(tmp_path, capsys):
    memo = str(tmp_path / "cli.memo")
    argv = ["search", "T2D", "48", "--strategy", "random", "--budget", "12",
            "--memo", memo, "--backend", "local"]
    assert cli.main(argv) == 0
    first = capsys.readouterr().out
    assert "backend:" in first and " 0 memo hits" in first
    assert cli.main(argv) == 0
    second = capsys.readouterr().out
    assert "12 memo hits" in second


def test_memo_store_keying_includes_cascade_budgets(tmp_path, monkeypatch):
    """Values computed under different cascade work budgets are different
    objectives: a --memo store populated under one budget must not
    warm-start a run under another (and remote workers inherit the
    coordinator's budgets via the pickled analyzer, not their own env)."""
    from repro.cache.config import CacheConfig
    from repro.search.tiling import search_tiling
    from tests.conftest import make_small_transpose

    memo = str(tmp_path / "budget.memo")
    kw = dict(strategy="random", budget=8, seed=0, n_samples=24,
              memo_path=memo)
    nest = make_small_transpose(32)
    cache = CacheConfig(1024, 32, 1)
    first = search_tiling(nest, cache, **kw)
    assert first.backend["store_hits"] == 0
    warm = search_tiling(nest, cache, **kw)
    assert warm.backend["new_solves"] == 0  # same budgets: fully warm
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_ENUM", "2")
    other = search_tiling(nest, cache, **kw)
    assert other.backend["store_hits"] == 0  # different objective identity
    assert other.backend["new_solves"] == other.search.distinct_evaluations


def test_memo_fingerprint_is_structural_not_name_based(tmp_path):
    """Two structurally different nests with the SAME name must not
    share memo-store values — the store is long-lived and shared."""
    import dataclasses

    from repro.cache.config import CacheConfig
    from repro.search.tiling import search_tiling
    from tests.conftest import make_small_transpose

    memo = str(tmp_path / "alias.memo")
    kw = dict(strategy="random", budget=6, seed=0, n_samples=24,
              memo_path=memo)
    cache = CacheConfig(1024, 32, 1)
    nest_a = make_small_transpose(32)
    nest_b = dataclasses.replace(make_small_transpose(48), name=nest_a.name)
    first = search_tiling(nest_a, cache, **kw)
    assert first.backend["store_hits"] == 0
    aliased = search_tiling(nest_b, cache, **kw)
    assert aliased.backend["store_hits"] == 0  # structure keys the store
    warm = search_tiling(nest_a, cache, **kw)
    assert warm.backend["new_solves"] == 0  # true repeat still warm-starts
