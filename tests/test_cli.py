"""CLI smoke tests."""

import pytest

from repro import cli


def test_help(capsys):
    assert cli.main([]) == 0
    out = capsys.readouterr().out
    assert "table2" in out and "REPRO_FULL" in out


def test_validate_command(capsys):
    assert cli.main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "CME sampling vs exact simulation" in out
    assert "164" in out


def test_unknown_command_is_noop(capsys):
    assert cli.main(["nonsense"]) == 0
    out = capsys.readouterr().out
    assert "experiment runner" in out


def test_kernels_listing(capsys):
    assert cli.main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "T2D" in out and "VPENTA1" in out and "depth=4" in out
    assert out.count("\n") == 17


def test_source_export(capsys):
    assert cli.main(["source", "MM", "8"]) == 0
    out = capsys.readouterr().out
    assert "do i = 1, 8" in out
    # The exported source must re-parse.
    from repro.ir.parser import parse_nest

    parse_nest(out)


def test_landscape_render(capsys):
    assert cli.main(["landscape", "T2D", "64"]) == 0
    out = capsys.readouterr().out
    assert "replacement ratio over tile dims" in out
    assert "grid-local minima:" in out
