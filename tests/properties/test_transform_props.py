"""Property-based tests for tiling and the point map."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir.program import TileMap, program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.trace import address_trace
from repro.transform.tiling import tile_program, tile_regions
from tests.conftest import make_small_transpose


@st.composite
def extents_and_tiles(draw, max_rank=3, max_extent=12):
    rank = draw(st.integers(1, max_rank))
    extents = tuple(draw(st.integers(1, max_extent)) for _ in range(rank))
    tiles = tuple(draw(st.integers(1, e)) for e in extents)
    return extents, tiles


@given(extents_and_tiles())
def test_regions_partition_iteration_space(data):
    extents, tiles = data
    regions = tile_regions(extents, tiles)
    total = sum(r.volume for r in regions)
    expected = int(np.prod(extents))
    assert total == expected
    # pairwise disjoint
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert a.intersect(b).is_empty


@given(extents_and_tiles())
def test_region_count_at_most_2_pow_d(data):
    extents, tiles = data
    regions = tile_regions(extents, tiles)
    assert 1 <= len(regions) <= 2 ** len(extents)


@given(extents_and_tiles())
def test_tile_map_is_bijection_into_regions(data):
    extents, tiles = data
    lowers = (1,) * len(extents)
    pm = TileMap(lowers, tiles)
    regions = tile_regions(extents, tiles)

    def in_some_region(q):
        return any(r.contains(q) for r in regions)

    seen = set()
    from itertools import product

    for p in product(*(range(1, e + 1) for e in extents)):
        q = pm.from_original(p)
        assert pm.to_original(q) == p
        assert in_some_region(q)
        seen.add(q)
    assert len(seen) == int(np.prod(extents))


@given(st.integers(1, 16), st.integers(1, 16))
@settings(max_examples=30)
def test_tiled_trace_is_permutation(t1, t2):
    """Tiling permutes the access trace — the §3.1 invariant behind
    'compulsory misses remain constant'."""
    nest = make_small_transpose(16)
    t1, t2 = min(t1, 16), min(t2, 16)
    layout = MemoryLayout(nest.arrays())
    orig = address_trace(program_from_nest(nest), layout)
    tiled = address_trace(tile_program(nest, (t1, t2)), layout)
    assert np.array_equal(np.sort(orig), np.sort(tiled))
