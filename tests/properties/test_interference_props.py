"""Property tests for the replacement-equation interference primitive.

``CongruenceTester.exists_interference`` is the kernel of the CME
solver: "does any access in this box fall into the reused line's cache
set while being a different memory line?"  We check it against a brute
force over random affine forms, boxes, and line positions.
"""

from hypothesis import given, settings, strategies as st

from repro.polyhedra.box import Box
from repro.polyhedra.congruence import CongruenceTester


@st.composite
def interference_cases(draw):
    rank = draw(st.integers(1, 3))
    coeffs = tuple(
        draw(st.sampled_from([-1024, -256, -40, -8, 0, 8, 24, 40, 256, 1024]))
        for _ in range(rank)
    )
    lo = tuple(draw(st.integers(0, 6)) for _ in range(rank))
    hi = tuple(l + draw(st.integers(0, 8)) for l in lo)
    const = draw(st.integers(0, 4096))
    m = 1024  # way bytes
    line = 32
    # line0 aligned to the line size, in or out of the reachable band.
    line0_start = draw(st.integers(0, 256)) * line
    wlo = line0_start % m
    return coeffs, const, Box(lo, hi), m, wlo, line, line0_start


def brute_interference(coeffs, const, box, m, wlo, line, line0_start):
    for q in box.points():
        f = const + sum(c * x for c, x in zip(coeffs, q))
        if (f - wlo) % m < line and f - (f % line) != line0_start:
            return True
    return False


@given(interference_cases())
@settings(max_examples=400)
def test_exists_interference_matches_bruteforce(case):
    coeffs, const, box, m, wlo, line, line0_start = case
    tester = CongruenceTester()
    got = tester.exists_interference(
        coeffs, const, box, m, wlo, line, line0_start
    )
    expected = brute_interference(coeffs, const, box, m, wlo, line, line0_start)
    # None (budget exhausted) is allowed to be conservative only.
    if got is None:
        assert True
    else:
        assert got == expected


@given(interference_cases())
@settings(max_examples=200)
def test_count_interfering_lines_lower_bound(case):
    coeffs, const, box, m, wlo, line, line0_start = case
    tester = CongruenceTester()
    lines = set()
    for q in box.points():
        f = const + sum(c * x for c, x in zip(coeffs, q))
        if (f - wlo) % m < line and f - (f % line) != line0_start:
            lines.add(f // line)
    for cap in (1, 2, 4):
        got = tester.count_interfering_lines(
            coeffs, const, box, m, wlo, line, line0_start, cap=cap
        )
        if got is not None:
            assert got == min(len(lines), cap)
