"""Property-based tests for the affine algebra."""

from hypothesis import given, strategies as st

from repro.ir.affine import AffineExpr

VARS = ("i", "j", "k")


@st.composite
def affine_exprs(draw):
    coeffs = {v: draw(st.integers(-50, 50)) for v in VARS}
    return AffineExpr(coeffs, draw(st.integers(-1000, 1000)))


envs = st.fixed_dictionaries({v: st.integers(-100, 100) for v in VARS})


@given(affine_exprs(), affine_exprs(), envs)
def test_addition_pointwise(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(affine_exprs(), affine_exprs(), envs)
def test_subtraction_pointwise(a, b, env):
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)


@given(affine_exprs(), st.integers(-20, 20), envs)
def test_scaling_pointwise(a, k, env):
    assert (a * k).evaluate(env) == k * a.evaluate(env)


@given(affine_exprs(), affine_exprs(), envs)
def test_substitution_commutes_with_evaluation(outer, inner, env):
    """outer[i := inner] evaluated == outer evaluated at i = inner(env)."""
    substituted = outer.substitute({"i": inner})
    env2 = dict(env)
    env2["i"] = inner.evaluate(env)
    assert substituted.evaluate(env) == outer.evaluate(env2)


@given(affine_exprs())
def test_double_negation_identity(a):
    assert -(-a) == a


@given(affine_exprs(), envs)
def test_range_over_bounds_evaluation(a, env):
    bounds = {v: (env[v] - 3, env[v] + 3) for v in VARS}
    lo, hi = a.range_over(bounds)
    assert lo <= a.evaluate(env) <= hi


@given(affine_exprs(), affine_exprs())
def test_equality_consistent_with_hash(a, b):
    if a == b:
        assert hash(a) == hash(b)
