"""Property-based tests for the cache simulator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.simulator.cachesim import compulsory_mask, simulate_lru, simulate_trace

traces = st.lists(st.integers(0, 4095), min_size=0, max_size=300).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


@given(traces)
def test_first_touch_always_misses(trace):
    cache = CacheConfig(512, 32, 1)
    miss = simulate_trace(trace, cache)
    cold = compulsory_mask(trace, cache)
    assert (miss | ~cold).all()


@given(traces)
def test_direct_mapped_equals_one_way_lru(trace):
    cache = CacheConfig(512, 32, 1)
    assert np.array_equal(simulate_trace(trace, cache), simulate_lru(trace, cache))


@given(traces, st.sampled_from([2, 4]))
def test_lru_inclusion_more_ways_same_sets(trace, k):
    """With equal set count, a k-way LRU cache contains the 1-way one."""
    small = CacheConfig(512, 32, 1)       # 16 sets
    big = CacheConfig(512 * k, 32, k)     # 16 sets, k ways
    m_small = simulate_trace(trace, small)
    m_big = simulate_trace(trace, big)
    assert (~m_small | m_big | ~m_big).all()  # vacuous guard for empty
    # inclusion property: big hits everywhere small hits
    assert not (m_big & ~m_small).any()


@given(traces)
def test_repeated_trace_second_pass_fits(trace):
    """If the footprint fits the cache, a second pass never misses."""
    cache = CacheConfig(4096, 32, 1)
    lines = set(trace // 32)
    sets = [ln % cache.num_sets for ln in lines]
    if len(sets) != len(set(sets)):
        return  # conflicting footprint: property does not apply
    twice = np.concatenate([trace, trace])
    miss = simulate_trace(twice, cache)
    assert not miss[len(trace):].any()


@given(traces)
def test_miss_count_bounded_by_distinct_lines_plus_conflicts(trace):
    cache = CacheConfig(512, 32, 1)
    cold = compulsory_mask(trace, cache)
    assert cold.sum() == len(set(trace // 32))
