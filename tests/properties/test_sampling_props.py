"""Property-based tests for sampled CME estimation (§2.3).

Two families of invariant:

* ``required_sample_size`` is monotone in its statistical knobs —
  tighter intervals and higher confidence can only demand more points
  (and the published 164-point design point is reproduced exactly);
* sampling is deterministic under ``(seed, n)`` so common-random-number
  candidate comparisons (and the corpus oracle's sampled mode) are
  reproducible bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro.cme.sampling import (
    PAPER_SAMPLE_SIZE,
    required_sample_size,
    sample_original_points,
)
from tests.conftest import make_small_mm

# Domain where the formula yields n >= 1; looser combinations are
# rejected by design (tested explicitly below).
widths = st.floats(0.01, 0.5)
confidences = st.floats(0.70, 0.995)


def test_paper_design_point():
    assert required_sample_size(0.1, 0.90) == PAPER_SAMPLE_SIZE == 164


@given(widths, confidences, confidences)
def test_monotone_in_confidence(width, c1, c2):
    lo, hi = sorted((c1, c2))
    assert required_sample_size(width, lo) <= required_sample_size(width, hi)


@given(widths, widths, confidences)
def test_antitone_in_width(w1, w2, confidence):
    lo, hi = sorted((w1, w2))
    assert required_sample_size(hi, confidence) <= required_sample_size(
        lo, confidence
    )


@given(widths, confidences)
def test_quarter_width_needs_16x_points(width, confidence):
    """n ∝ 1/w²: quartering the width multiplies the count by ~16."""
    if width / 4 <= 0.0025:  # stay inside the validated domain
        return
    n1 = required_sample_size(width, confidence)
    n16 = required_sample_size(width / 4, confidence)
    assert n16 >= 16 * n1 - 16  # floor() slack


def test_too_loose_parameters_rejected():
    import pytest

    with pytest.raises(ValueError):
        required_sample_size(0.5, 0.625)  # would need < 1 point
    with pytest.raises(ValueError):
        required_sample_size(1.5, 0.9)
    with pytest.raises(ValueError):
        required_sample_size(0.1, 0.4)


@given(st.integers(0, 2**31), st.integers(1, 200))
def test_sample_deterministic_under_seed(seed, n):
    nest = make_small_mm(8)
    a = sample_original_points(nest, n, seed)
    b = sample_original_points(nest, n, seed)
    assert a == b


@given(st.integers(0, 1000))
@settings(max_examples=25)
def test_sample_prefix_free_across_sizes(seed):
    """Different n values are independent draws — determinism is keyed
    on (seed, n) jointly, which is what the CRN contract promises."""
    small = sample_original_points(make_small_mm(8), 10, seed)
    again = sample_original_points(make_small_mm(8), 10, seed)
    assert small == again
    assert len(small) == 10


@given(st.integers(0, 1000), st.integers(1, 100))
def test_sample_points_inside_bounds(seed, n):
    nest = make_small_mm(8)
    for p in sample_original_points(nest, n, seed):
        for v, loop in zip(p, nest.loops):
            assert loop.lower <= v <= loop.upper


def test_estimate_repeat_determinism():
    """Same (seed, n_samples) → bit-identical estimate, including the
    per-reference outcome breakdown."""
    from repro.cache.config import CacheConfig
    from repro.cme.analyzer import LocalityAnalyzer

    nest = make_small_mm(12)
    cache = CacheConfig(1024, 32, 2)
    a = LocalityAnalyzer(nest, cache, n_samples=64, seed=3).estimate()
    b = LocalityAnalyzer(nest, cache, n_samples=64, seed=3).estimate()
    assert a.miss_ratio == b.miss_ratio
    assert a.per_ref == b.per_ref
    assert (a.hits, a.cold, a.replacement) == (b.hits, b.cold, b.replacement)
