"""Property-based tests for the GA encoding (Eq. 2)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.ga.encoding import Genome, bits_for, decode_value


@given(st.integers(1, 5000))
def test_bits_even_and_sufficient(upper):
    b = bits_for(upper)
    assert b % 2 == 0
    assert (1 << b) >= upper


@given(st.integers(2, 2000), st.data())
def test_decode_in_range_and_monotone(upper, data):
    b = bits_for(upper)
    x = data.draw(st.integers(0, (1 << b) - 1))
    y = data.draw(st.integers(0, (1 << b) - 1))
    gx = decode_value(x, 1, upper, b)
    assert 1 <= gx <= upper
    if x <= y:
        assert gx <= decode_value(y, 1, upper, b)


@given(st.integers(2, 500), st.integers(1, 500))
def test_encode_is_right_inverse(upper, value):
    value = 1 + (value - 1) % upper
    g = Genome([(1, upper)])
    assert g.decode(g.encode((value,))) == (value,)


@given(st.lists(st.integers(1, 200), min_size=1, max_size=4), st.integers(0, 2**32))
def test_random_individuals_decode_validly(uppers, seed):
    g = Genome([(1, u) for u in uppers])
    rng = np.random.default_rng(seed)
    values = g.decode(g.random_individual(rng))
    assert len(values) == len(uppers)
    for v, u in zip(values, uppers):
        assert 1 <= v <= u
