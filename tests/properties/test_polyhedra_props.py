"""Property-based tests for boxes, lex intervals and congruences."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.polyhedra.box import Box
from repro.polyhedra.congruence import exists_absolute_interval, exists_mod_window
from repro.polyhedra.lexinterval import lex_between_boxes


@st.composite
def small_boxes(draw, max_rank=3, max_extent=5):
    rank = draw(st.integers(1, max_rank))
    lo = tuple(draw(st.integers(-4, 4)) for _ in range(rank))
    hi = tuple(l + draw(st.integers(0, max_extent - 1)) for l in lo)
    return Box(lo, hi)


@given(small_boxes())
def test_unrank_rank_bijection(box):
    seen = set()
    for idx in range(box.volume):
        p = box.unrank(idx)
        assert box.rank_of(p) == idx
        seen.add(p)
    assert len(seen) == box.volume


@given(small_boxes())
def test_points_are_sorted_and_complete(box):
    pts = list(box.points())
    assert pts == sorted(pts)
    assert len(pts) == box.volume


@st.composite
def box_with_two_points(draw):
    box = draw(small_boxes())
    pt = lambda: tuple(
        draw(st.integers(l - 2, h + 2)) for l, h in zip(box.lo, box.hi)
    )
    return box, pt(), pt()


@given(box_with_two_points())
@settings(max_examples=200)
def test_lex_between_is_exact_partition(data):
    box, a, b = data
    if a > b:
        a, b = b, a
    expected = {q for q in box.points() if a < q < b}
    got = []
    for sub in lex_between_boxes(a, b, box):
        got.extend(sub.points())
    assert len(got) == len(set(got)), "decomposition boxes overlap"
    assert set(got) == expected


@st.composite
def congruence_cases(draw):
    rank = draw(st.integers(1, 3))
    coeffs = tuple(draw(st.integers(-64, 64)) for _ in range(rank))
    lo = tuple(draw(st.integers(0, 8)) for _ in range(rank))
    hi = tuple(l + draw(st.integers(0, 9)) for l in lo)
    const = draw(st.integers(-500, 500))
    m = draw(st.sampled_from([16, 32, 64, 128, 256]))
    wlo = draw(st.integers(0, m - 1))
    wlen = draw(st.integers(1, m))
    return coeffs, const, Box(lo, hi), m, wlo, wlen


@given(congruence_cases())
@settings(max_examples=300)
def test_exists_mod_window_exact(case):
    coeffs, const, box, m, wlo, wlen = case
    brute = any(
        (const + sum(c * x for c, x in zip(coeffs, q)) - wlo) % m < wlen
        for q in box.points()
    )
    got = exists_mod_window(coeffs, const, box, m, wlo, wlen)
    assert got is not None
    assert got == brute


@given(congruence_cases(), st.integers(-200, 200), st.integers(0, 100))
@settings(max_examples=300)
def test_exists_absolute_interval_exact(case, lo, width):
    coeffs, const, box, *_ = case
    hi = lo + width
    brute = any(
        lo <= const + sum(c * x for c, x in zip(coeffs, q)) <= hi
        for q in box.points()
    )
    got = exists_absolute_interval(coeffs, const, box, lo, hi)
    assert got is not None
    assert got == brute
