"""The central REPRO_* knob registry (repro.envs)."""

import pytest

from repro import envs


def test_every_knob_is_registered_under_its_own_name():
    for name, knob in envs.KNOBS.items():
        assert knob.name == name
        assert name.startswith("REPRO_")
        assert knob.help  # every knob documents itself


def test_default_when_unset(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert envs.WORKERS.get() == 1
    monkeypatch.setenv("REPRO_WORKERS", "")
    assert envs.WORKERS.get() == 1  # empty string == unset (historical)


def test_full_flag_historical_truthiness(monkeypatch):
    for raw, expect in [
        ("1", True), ("yes", True), ("anything", True),
        ("0", False), ("false", False), ("no", False),
    ]:
        monkeypatch.setenv("REPRO_FULL", raw)
        assert envs.FULL.get() is expect


def test_batch_cascade_only_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_CASCADE", "0")
    assert envs.BATCH_CASCADE.get() is False
    monkeypatch.setenv("REPRO_BATCH_CASCADE", "false")
    assert envs.BATCH_CASCADE.get() is True  # historical: only "0" is off


def test_workers_clamps_and_degrades(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert envs.WORKERS.get() == 1  # clamped
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    assert envs.WORKERS.get() == 1  # non-strict: garbage degrades to default


def test_strict_knob_raises_on_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_ENUM", "many")
    with pytest.raises(ValueError, match="REPRO_CASCADE_BUDGET_ENUM"):
        envs.CASCADE_BUDGET_ENUM.get()
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_ENUM", "128")
    assert envs.CASCADE_BUDGET_ENUM.get() == 128


def test_set_exports_for_worker_inheritance(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_CASCADE_BUDGET_ABS", raising=False)
    assert not envs.CASCADE_BUDGET_ABS.is_set()
    envs.CASCADE_BUDGET_ABS.set(64)
    try:
        assert os.environ["REPRO_CASCADE_BUDGET_ABS"] == "64"
        assert envs.CASCADE_BUDGET_ABS.is_set()
        assert envs.CASCADE_BUDGET_ABS.get() == 64
    finally:
        os.environ.pop("REPRO_CASCADE_BUDGET_ABS", None)


def test_duplicate_registration_refused():
    with pytest.raises(ValueError, match="duplicate"):
        envs._register("REPRO_FULL", str)


def test_result_affecting_knobs_declare_fingerprint_fields():
    # The contract the fingerprint-coverage lint rule enforces: every
    # affects_results knob names the field carrying it into the
    # objective fingerprint — today that's the cascade-budget family.
    assert envs.fingerprint_fields() == ("cascade_budgets",)
    for knob in envs.KNOBS.values():
        if knob.affects_results:
            assert knob.fingerprint_field in envs.fingerprint_fields()


def test_cascade_budget_knobs_flow_to_resolver(monkeypatch):
    from repro.polyhedra.congruence import CongruenceTester

    monkeypatch.setenv("REPRO_CASCADE_BUDGET_LINE", "7")
    assert CongruenceTester().line_candidate_limit == 7
    monkeypatch.setenv("REPRO_CASCADE_BUDGET_LINE", "0")
    with pytest.raises(ValueError, match=">= 1"):
        CongruenceTester()
