"""Baseline tile-size selectors: validity and basic quality."""

import pytest

from repro.baselines.annealing import simulated_annealing
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.ghosh_cme import ghosh_cme_tiles
from repro.baselines.hillclimb import hill_climb
from repro.baselines.lrw import lrw_tiles
from repro.baselines.random_search import random_search
from repro.baselines.sarkar_megiddo import sarkar_megiddo_tiles
from repro.baselines.tss import coleman_mckinley_tiles
from repro.cache.config import CacheConfig
from tests.conftest import make_small_mm, make_small_transpose

CACHE = CacheConfig(1024, 32, 1)


def _valid(tiles, nest):
    return len(tiles) == nest.depth and all(
        1 <= t <= l.extent for t, l in zip(tiles, nest.loops)
    )


@pytest.mark.parametrize(
    "selector",
    [lrw_tiles, coleman_mckinley_tiles, sarkar_megiddo_tiles, ghosh_cme_tiles],
    ids=["lrw", "tss", "sarkar-megiddo", "ghosh"],
)
def test_analytical_selectors_return_valid_tiles(selector):
    for nest in (make_small_transpose(48), make_small_mm(24)):
        tiles = selector(nest, CACHE)
        assert _valid(tiles, nest)


def test_lrw_square_inner_tiles():
    nest = make_small_mm(24)
    tiles = lrw_tiles(nest, CACHE)
    assert tiles[0] == 24  # outer loop untiled
    assert tiles[1] == tiles[2]  # square inner tile


def test_ghosh_bounds_reflect_strides():
    nest = make_small_transpose(48)
    tiles = ghosh_cme_tiles(nest, CACHE)
    # the loop walking the 48·8=384-byte stride is bounded below 48
    assert min(tiles) < 48


def toy_objective(target):
    def fn(tiles):
        return float(sum((t - x) ** 2 for t, x in zip(tiles, target)))
    return fn


def test_exhaustive_finds_exact_optimum():
    nest = make_small_transpose(12)
    tiles, val, evals = exhaustive_search(nest, toy_objective((5, 9)))
    assert tiles == (5, 9)
    assert val == 0
    assert evals == 144


def test_exhaustive_grid_mode_bounds_work():
    nest = make_small_transpose(48)
    tiles, val, evals = exhaustive_search(
        nest, toy_objective((48, 1)), max_points_per_dim=6
    )
    assert evals <= 8 * 8
    assert tiles[0] == 48 and tiles[1] == 1  # endpoints always on the grid


def test_random_search_budget_respected():
    nest = make_small_transpose(16)
    tiles, val, evals = random_search(nest, toy_objective((8, 8)), budget=50, seed=0)
    assert evals == 50
    assert _valid(tiles, nest)


def test_hill_climb_descends():
    nest = make_small_transpose(32)
    obj = toy_objective((4, 27))
    tiles, val, evals = hill_climb(nest, obj, start=(16, 16))
    assert val <= obj((16, 16))
    assert tiles == (4, 27)


def test_annealing_improves_over_start():
    nest = make_small_transpose(32)
    obj = toy_objective((2, 30))
    tiles, val, evals = simulated_annealing(nest, obj, budget=300, seed=1)
    assert val <= obj((16, 16))
    assert _valid(tiles, nest)


def test_search_baselines_deterministic():
    nest = make_small_transpose(16)
    obj = toy_objective((3, 3))
    a = random_search(nest, obj, budget=30, seed=5)
    b = random_search(nest, obj, budget=30, seed=5)
    assert a == b
    c = simulated_annealing(nest, obj, budget=60, seed=5)
    d = simulated_annealing(nest, obj, budget=60, seed=5)
    assert c == d
