"""Address-trace generation tests."""

import numpy as np
import pytest

from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.trace import MAX_TRACE_ACCESSES, address_trace, ref_address_matrix
from repro.transform.tiling import tile_program
from tests.conftest import make_small_transpose


def interpret_addresses(nest, layout):
    """Reference: evaluate every ref at every point, Python-level."""
    out = []
    prog = program_from_nest(nest)
    for point in prog.space.all_points_lex():
        env = dict(zip(prog.space.vars, point))
        for ref in sorted(prog.refs, key=lambda r: r.position):
            out.append(layout.address_expr(ref).evaluate(env))
    return np.array(out)


def test_trace_matches_interpreter():
    nest = make_small_transpose(6)
    layout = MemoryLayout(nest.arrays())
    trace = address_trace(program_from_nest(nest), layout)
    assert np.array_equal(trace, interpret_addresses(nest, layout))


def test_ref_matrix_shape_and_columns():
    nest = make_small_transpose(5)
    layout = MemoryLayout(nest.arrays())
    mat = ref_address_matrix(program_from_nest(nest), layout)
    assert mat.shape == (25, 2)
    # Column 0 is B (base 0..), column 1 is A (second array).
    assert mat[0, 0] == layout.base("B")
    assert mat[0, 1] == layout.base("A")


def test_tiled_trace_is_permutation_of_original():
    """Tiling reorders iterations; the address multiset is invariant."""
    nest = make_small_transpose(7)
    layout = MemoryLayout(nest.arrays())
    orig = address_trace(program_from_nest(nest), layout)
    tiled = address_trace(tile_program(nest, (3, 2)), layout)
    assert len(orig) == len(tiled)
    assert np.array_equal(np.sort(orig), np.sort(tiled))
    assert not np.array_equal(orig, tiled)  # order genuinely changed


def test_trace_guard():
    nest = make_small_transpose(6)
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest)
    import repro.simulator.trace as tr

    old = tr.MAX_TRACE_ACCESSES
    try:
        tr.MAX_TRACE_ACCESSES = 10
        with pytest.raises(MemoryError):
            ref_address_matrix(prog, layout)
    finally:
        tr.MAX_TRACE_ACCESSES = old
