"""End-to-end simulation classification tests."""

from repro.cache.config import CacheConfig
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.classify import simulate_program
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm, make_small_transpose


def test_result_accounting_consistent():
    nest = make_small_mm(12)
    layout = MemoryLayout(nest.arrays())
    res = simulate_program(program_from_nest(nest), layout, CacheConfig(1024, 32, 1))
    assert res.accesses == nest.num_accesses
    assert res.misses == sum(res.per_ref_misses.values())
    assert res.replacement == sum(res.per_ref_replacement.values())
    assert 0 <= res.replacement <= res.misses <= res.accesses
    assert res.compulsory <= res.misses


def test_compulsory_invariant_under_tiling():
    """§3.1: tiling changes order only, so compulsory misses are fixed."""
    nest = make_small_transpose(20)
    layout = MemoryLayout(nest.arrays())
    cache = CacheConfig(1024, 32, 1)
    base = simulate_program(program_from_nest(nest), layout, cache)
    for tiles in [(4, 4), (5, 20), (7, 3), (20, 20)]:
        tiled = simulate_program(tile_program(nest, tiles), layout, cache)
        assert tiled.compulsory == base.compulsory
        assert tiled.accesses == base.accesses


def test_some_tiling_reduces_transpose_misses():
    nest = make_small_transpose(64)
    layout = MemoryLayout(nest.arrays())
    cache = CacheConfig(1024, 32, 1)
    untiled = simulate_program(program_from_nest(nest), layout, cache)
    best = min(
        simulate_program(tile_program(nest, t), layout, cache).replacement
        for t in [(4, 4), (8, 2), (16, 2), (4, 2)]
    )
    assert best < untiled.replacement


def test_ratios():
    nest = make_small_mm(8)
    layout = MemoryLayout(nest.arrays())
    res = simulate_program(program_from_nest(nest), layout, CacheConfig(1024, 32, 1))
    assert abs(res.miss_ratio - res.misses / res.accesses) < 1e-12
    assert abs(
        res.replacement_ratio + res.compulsory_ratio - res.miss_ratio
    ) < 1e-12
    assert "accesses=" in res.summary()
