"""Cache simulator tests against a reference interpreter."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.simulator.cachesim import (
    compulsory_mask,
    simulate_direct_mapped,
    simulate_lru,
    simulate_trace,
)


def reference_lru(addresses, cache):
    """Straightforward per-access LRU interpreter (the oracle)."""
    sets: dict[int, list[int]] = {}
    out = []
    for a in addresses:
        line = a // cache.line_size
        s = line % cache.num_sets
        stack = sets.setdefault(s, [])
        if line in stack:
            stack.remove(line)
            stack.insert(0, line)
            out.append(False)
        else:
            stack.insert(0, line)
            if len(stack) > cache.associativity:
                stack.pop()
            out.append(True)
    return np.array(out)


@pytest.mark.parametrize("assoc", [1, 2, 4])
def test_simulators_match_reference_on_random_traces(assoc):
    cache = CacheConfig(1024, 32, assoc)
    rng = np.random.default_rng(3)
    trace = rng.integers(0, 4096, size=2000)
    expected = reference_lru(trace, cache)
    got = simulate_trace(trace, cache)
    assert np.array_equal(got, expected)


def test_direct_mapped_pingpong():
    cache = CacheConfig(1024, 32, 1)
    # Two lines mapping to the same set (1024 apart) alternate: all miss.
    trace = np.array([0, 1024] * 10)
    assert simulate_direct_mapped(trace, cache).all()


def test_direct_mapped_requires_dm():
    with pytest.raises(ValueError):
        simulate_direct_mapped(np.array([0]), CacheConfig(1024, 32, 2))


def test_two_way_holds_both_lines():
    cache = CacheConfig(1024, 32, 2)
    trace = np.array([0, 512, 0, 512, 0, 512])
    miss = simulate_lru(trace, cache)
    assert list(miss) == [True, True, False, False, False, False]


def test_lru_eviction_order():
    cache = CacheConfig(64, 32, 2)  # one set, two ways
    trace = np.array([0, 32, 64, 0])
    # 0 miss, 32 miss, 64 evicts 0 (LRU), 0 misses again.
    assert list(simulate_lru(trace, cache)) == [True, True, True, True]
    trace2 = np.array([0, 32, 0, 64, 32])
    # after [0,32,0]: stack [0,32]; 64 evicts 32; 32 misses.
    assert list(simulate_lru(trace2, cache)) == [True, True, False, True, True]


def test_spatial_locality_within_line():
    cache = CacheConfig(1024, 32, 1)
    trace = np.arange(0, 64, 8)  # two lines, 4 accesses each
    miss = simulate_direct_mapped(trace, cache)
    assert miss.sum() == 2


def test_compulsory_mask_first_touch_only():
    cache = CacheConfig(1024, 32, 1)
    trace = np.array([0, 8, 1024, 0, 2048])
    cold = compulsory_mask(trace, cache)
    assert list(cold) == [True, False, True, False, True]


def test_compulsory_subset_of_misses():
    cache = CacheConfig(256, 32, 1)
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 2048, size=500)
    miss = simulate_trace(trace, cache)
    cold = compulsory_mask(trace, cache)
    assert (miss | ~cold).all()  # cold ⇒ miss


def test_empty_trace():
    cache = CacheConfig(1024, 32, 1)
    empty = np.array([], dtype=np.int64)
    assert simulate_trace(empty, cache).size == 0
    assert compulsory_mask(empty, cache).size == 0
