"""Two-level hierarchy simulation tests."""

import pytest

from repro.cache.config import CacheConfig
from repro.ir.program import program_from_nest
from repro.layout.memory import MemoryLayout
from repro.simulator.classify import simulate_program
from repro.simulator.hierarchy import simulate_hierarchy
from repro.transform.tiling import tile_program
from tests.conftest import make_small_mm, make_small_transpose

L1 = CacheConfig(1024, 32, 1)
L2 = CacheConfig(8 * 1024, 32, 1)


def test_levels_consistent_with_single_level():
    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest)
    res = simulate_hierarchy(prog, layout, L1, L2)
    single_l1 = simulate_program(prog, layout, L1)
    assert res.l1_misses == single_l1.misses
    assert res.accesses == single_l1.accesses
    assert res.l2_accesses == res.l1_misses
    assert res.l2_misses <= res.l1_misses


def test_l2_filters_compulsory_lower_bound():
    nest = make_small_transpose(32)
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest)
    res = simulate_hierarchy(prog, layout, L1, L2)
    # Every distinct line must miss at least once even in L2.
    assert res.l2_misses >= res.compulsory * 0 + 1
    assert res.l2_global_miss_ratio <= res.l1_miss_ratio


def test_amat_monotone_in_misses():
    nest = make_small_transpose(48)
    layout = MemoryLayout(nest.arrays())
    untiled = simulate_hierarchy(program_from_nest(nest), layout, L1, L2)
    tiled = simulate_hierarchy(tile_program(nest, (8, 2)), layout, L1, L2)
    if tiled.l1_misses < untiled.l1_misses and tiled.l2_misses <= untiled.l2_misses:
        assert tiled.amat() < untiled.amat()
    assert untiled.amat() >= 1.0


def test_invalid_hierarchies_rejected():
    nest = make_small_mm(8)
    layout = MemoryLayout(nest.arrays())
    prog = program_from_nest(nest)
    with pytest.raises(ValueError):
        simulate_hierarchy(prog, layout, L2, L1)
    with pytest.raises(ValueError):
        simulate_hierarchy(
            prog, layout, CacheConfig(1024, 64, 1), CacheConfig(8192, 32, 1)
        )


def test_l1_tiles_also_help_l2_on_transpose():
    """The practical extension question: tiles chosen for L1 should not
    hurt the L2 level on a capacity-bound kernel."""
    nest = make_small_transpose(64)
    layout = MemoryLayout(nest.arrays())
    untiled = simulate_hierarchy(program_from_nest(nest), layout, L1, L2)
    tiled = simulate_hierarchy(tile_program(nest, (4, 2)), layout, L1, L2)
    assert tiled.l2_misses <= untiled.l2_misses * 1.05
