"""End-to-end: ``repro.cli lint`` on the real repository."""

import json

import pytest

from repro import cli
from repro.contracts import RULES, lint_main


def test_repo_lints_clean(capsys):
    # THE gate: the committed tree has zero non-baselined findings.
    assert cli.main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_json_format(capsys):
    assert cli.main(["lint", "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_bad_format_rejected():
    with pytest.raises(SystemExit, match="--format"):
        cli.main(["lint", "--format", "yaml"])


def test_missing_explicit_baseline_rejected():
    with pytest.raises(SystemExit, match="does not exist"):
        cli.main(["lint", "--baseline", "/nonexistent/baseline.json"])


def test_nonzero_exit_on_findings(make_tree, capsys):
    root = make_tree(
        {"src/repro/search/bad.py": "import time\nT = time.time()\n"}
    )
    assert cli.main(["lint", str(root)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out and "1 finding(s)" in out


def test_baseline_suppresses_known_findings(make_tree, tmp_path, capsys):
    root = make_tree(
        {"src/repro/search/bad.py": "import time\nT = time.time()\n"}
    )
    from repro.contracts.engine import run_lint, save_baseline

    baseline = tmp_path / "known.json"
    save_baseline(run_lint(root), baseline)
    assert cli.main(["lint", str(root), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out and "1 baselined" in out


def test_default_baseline_in_root_is_picked_up(make_tree, capsys):
    root = make_tree(
        {"src/repro/search/bad.py": "import time\nT = time.time()\n"}
    )
    from repro.contracts.engine import run_lint, save_baseline

    save_baseline(run_lint(root), root / "lint_baseline.json")
    assert cli.main(["lint", str(root)]) == 0


def test_registry_has_the_contracted_rules():
    assert set(RULES) == {
        "determinism",
        "wire-pickle",
        "fingerprint-coverage",
        "fingerprint-purity",
        "telemetry-purity",
        "env-registry",
        "wire-ops",
        "broad-except",
    }
    assert lint_main(root=".", out=open("/dev/null", "w")) == 0
