"""Fixture-tree helper for the contract-linter tests."""

from pathlib import Path

import pytest


@pytest.fixture
def make_tree(tmp_path):
    """Write a dict of ``relpath -> source`` as a tree; returns its root."""

    def _make(files: dict[str, str]) -> Path:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return tmp_path

    return _make


def rules_of(findings):
    return [f.rule for f in findings]
