"""The ``telemetry-purity`` rule: result-deciding code may write
telemetry but never read it, and fingerprints are telemetry-blind
(architecture contract 8)."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.telemetry_purity import TelemetryPurityRule


def lint(root):
    return run_lint(root, [TelemetryPurityRule()])


#: An objective that only *writes* — the sanctioned pattern.
CLEAN_OBJECTIVE = textwrap.dedent(
    """
    from repro import telemetry

    def evaluate(tiles):
        rec = telemetry.recorder()
        if rec.enabled:
            rec.count("cascade.points", 10)
        with rec.span("objective.call"):
            value = float(sum(tiles))
        rec.gauge("objective.value", value)
        return value
    """
)


def test_write_only_objective_passes(make_tree):
    root = make_tree({"src/repro/ga/objective.py": CLEAN_OBJECTIVE})
    assert lint(root) == []


def test_counter_read_in_objective_is_flagged(make_tree):
    src = textwrap.dedent(
        """
        from repro import telemetry

        def evaluate(tiles):
            rec = telemetry.recorder()
            penalty = rec.counters.get("evaluator.memo_hits", 0)
            return float(sum(tiles)) + penalty
        """
    )
    root = make_tree({"src/repro/ga/objective.py": src})
    findings = lint(root)
    assert len(findings) == 1
    assert ".counters" in findings[0].message
    assert "contract 8" in findings[0].message


def test_read_api_import_in_strategy_is_flagged(make_tree):
    src = textwrap.dedent(
        """
        from repro.telemetry import drain_events

        def propose(state):
            events = drain_events()
            return [e["name"] for e in events]
        """
    )
    root = make_tree({"src/repro/search/strategies.py": src})
    findings = lint(root)
    assert len(findings) == 1
    assert "drain_events" in findings[0].message
    assert findings[0].path == "src/repro/search/strategies.py"


def test_read_outside_restricted_code_passes(make_tree):
    """The CLI / reporting layer is the read side — reads are its job."""
    src = textwrap.dedent(
        """
        from repro import telemetry

        def report(path):
            events = telemetry.load_events(path)
            return telemetry.merge_events([events])
        """
    )
    root = make_tree({"src/repro/cli.py": src})
    assert lint(root) == []


def test_restricted_module_without_telemetry_import_passes(make_tree):
    """``.events`` on a non-telemetry object only matters once the
    module actually imports telemetry."""
    src = textwrap.dedent(
        """
        def evaluate(log, tiles):
            return float(len(log.events) + sum(tiles))
        """
    )
    root = make_tree({"src/repro/cme/sampling.py": src})
    assert lint(root) == []


def test_fingerprint_referencing_telemetry_is_flagged(make_tree):
    """Fingerprints key the memo store — telemetry state in the tuple
    (even via an assignment feeding it) splits or poisons it."""
    src = textwrap.dedent(
        """
        from repro import telemetry

        def run(nest, cache, seed):
            solves = telemetry.recorder().counters.get("solves", 0)
            fingerprint = (nest, repr(cache), seed, solves)
            return fingerprint
        """
    )
    root = make_tree({"src/repro/search/tiling.py": src})
    findings = lint(root)
    assert findings
    assert any("telemetry-blind" in f.message for f in findings)


def test_fingerprint_in_unrestricted_module_is_still_checked(make_tree):
    """Fingerprint blindness applies everywhere, not just to the
    restricted packages."""
    src = textwrap.dedent(
        """
        from repro import telemetry as t

        def run(nest, seed):
            fingerprint = (nest, seed, t)
            return fingerprint
        """
    )
    root = make_tree({"src/repro/util/helpers.py": src})
    findings = lint(root)
    assert len(findings) == 1
    assert "telemetry-blind" in findings[0].message


def test_suppression_comment_is_honoured(make_tree):
    src = textwrap.dedent(
        """
        from repro import telemetry

        def evaluate(tiles):
            rec = telemetry.recorder()
            # repro: lint-ok[telemetry-purity]
            hits = rec.counters.get("x", 0)
            return float(sum(tiles)) + hits
        """
    )
    root = make_tree({"src/repro/ga/objective.py": src})
    assert lint(root) == []
