"""The ``broad-except`` rule: broad handlers must justify themselves."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.broad_except import BroadExceptRule


def lint(root):
    return run_lint(root, [BroadExceptRule()])


def test_swallowing_broad_handlers_flagged(make_tree):
    bad = textwrap.dedent(
        """
        def f():
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except BaseException:
                return None
            try:
                work()
            except:
                return None
        """
    )
    root = make_tree({"src/repro/search/bad.py": bad})
    findings = lint(root)
    assert len(findings) == 3
    msgs = " | ".join(f.message for f in findings)
    assert "except Exception" in msgs
    assert "except BaseException" in msgs
    assert "bare except:" in msgs


def test_cleanup_and_reraise_passes(make_tree):
    ok = textwrap.dedent(
        """
        def f(resource):
            try:
                work()
            except Exception:
                resource.close()
                raise
        """
    )
    root = make_tree({"src/repro/search/ok.py": ok})
    assert lint(root) == []


def test_narrow_handlers_pass(make_tree):
    ok = textwrap.dedent(
        """
        def f():
            try:
                work()
            except (OSError, ValueError):
                return None
        """
    )
    root = make_tree({"src/repro/search/ok.py": ok})
    assert lint(root) == []


def test_suppression_on_line_or_preceding_comment(make_tree):
    ok = textwrap.dedent(
        """
        def f():
            try:
                work()
            except Exception:  # repro: lint-ok[broad-except]
                return None
            try:
                work()
            # fault isolation boundary  # repro: lint-ok[broad-except]
            except Exception:
                return None
        """
    )
    root = make_tree({"src/repro/search/ok.py": ok})
    assert lint(root) == []


def test_real_repo_sites_are_all_annotated_or_reraising():
    assert lint(".") == []
