"""The ``wire-pickle`` rule: classes and payloads must survive pickle."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.wire_safety import WireSafetyRule


def lint(root):
    return run_lint(root, [WireSafetyRule()])


def test_function_local_class_flagged(make_tree):
    bad = textwrap.dedent(
        """
        def build():
            class Payload:
                pass

            return Payload()
        """
    )
    root = make_tree({"src/repro/distributed/bad.py": bad})
    findings = lint(root)
    assert len(findings) == 1
    assert "function-local" in findings[0].message
    assert "'Payload'" in findings[0].message


def test_module_level_class_passes(make_tree):
    clean = "class Payload:\n    pass\n"
    root = make_tree({"src/repro/distributed/clean.py": clean})
    assert lint(root) == []


def test_function_local_class_outside_pickled_packages_passes(make_tree):
    local = textwrap.dedent(
        """
        def build():
            class Helper:
                pass

            return Helper()
        """
    )
    root = make_tree({"src/repro/analysis/report.py": local})
    assert lint(root) == []


def test_frozen_slots_without_reduce_flagged(make_tree):
    bad = textwrap.dedent(
        """
        class Expr:
            __slots__ = ("coeffs",)

            def __setattr__(self, name, value):
                raise AttributeError("immutable")
        """
    )
    good = textwrap.dedent(
        """
        class Expr:
            __slots__ = ("coeffs",)

            def __setattr__(self, name, value):
                raise AttributeError("immutable")

            def __reduce__(self):
                return (type(self), (self.coeffs,))


        class PlainSlots:
            __slots__ = ("x",)  # no frozen setattr: default pickle works
        """
    )
    root = make_tree(
        {
            "src/repro/ir/bad.py": bad,
            "src/repro/ir/good.py": good,
        }
    )
    findings = lint(root)
    assert len(findings) == 1
    assert findings[0].path == "src/repro/ir/bad.py"
    assert "__slots__" in findings[0].message


def test_lambda_in_pickle_payload_flagged(make_tree):
    bad = textwrap.dedent(
        """
        import pickle


        def ship(sock, send_frame):
            blob = pickle.dumps({"fn": lambda x: x + 1})
            send_frame(sock, {"op": "eval", "key": lambda c: c[0]})
            return blob
        """
    )
    clean = textwrap.dedent(
        """
        import pickle


        def ship(items):
            # lambdas in *non-payload* positions stay legal
            return pickle.dumps(sorted(items)), sorted(items, key=lambda i: i)
        """
    )
    root = make_tree(
        {
            "src/repro/distributed/bad.py": bad,
            "src/repro/distributed/clean.py": clean,
        }
    )
    findings = lint(root)
    assert len(findings) == 2
    assert all("lambda" in f.message for f in findings)
    assert all(f.path.endswith("bad.py") for f in findings)
