"""The ``env-registry`` rule: REPRO_* reads outside repro.envs."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.env_registry import EnvRegistryRule


def lint(root):
    return run_lint(root, [EnvRegistryRule()])


def test_direct_repro_reads_flagged_everywhere(make_tree):
    bad = textwrap.dedent(
        """
        import os

        A = os.getenv("REPRO_FULL")
        B = os.environ.get("REPRO_WORKERS", "1")
        C = os.environ["REPRO_HOSTS"]
        D = "REPRO_FULL" in os.environ
        """
    )
    root = make_tree({"src/repro/experiments/bad.py": bad})
    findings = lint(root)
    assert len(findings) == 4
    assert all(f.rule == "env-registry" for f in findings)
    assert "REPRO_FULL" in findings[0].message


def test_envs_module_itself_is_exempt(make_tree):
    envs = textwrap.dedent(
        """
        import os


        def get(name):
            return os.environ.get(name) or os.getenv("REPRO_FULL")
        """
    )
    root = make_tree({"src/repro/envs.py": envs})
    assert lint(root) == []


def test_non_repro_variables_are_not_claimed(make_tree):
    ok = textwrap.dedent(
        """
        import os

        CI = os.environ.get("CI")
        HOME = os.environ["HOME"]
        """
    )
    root = make_tree({"src/repro/experiments/ok.py": ok})
    assert lint(root) == []


def test_examples_are_walked_too(make_tree):
    bad = "import os\nK = os.getenv('REPRO_EXAMPLE_KERNEL')\n"
    root = make_tree({"examples/demo.py": bad})
    findings = lint(root)
    assert len(findings) == 1
    assert findings[0].path == "examples/demo.py"


def test_corpus_module_reads_flagged(make_tree):
    # The corpus knobs (REPRO_CORPUS_*) must flow through repro.envs
    # like every other knob — a direct read in src/repro/corpus/ is a
    # finding.
    bad = textwrap.dedent(
        """
        import os

        SEED = int(os.environ.get("REPRO_CORPUS_SEED", "0"))
        CASES = os.getenv("REPRO_CORPUS_CASES")
        """
    )
    root = make_tree({"src/repro/corpus/bad_knobs.py": bad})
    findings = lint(root)
    assert len(findings) == 2
    assert "REPRO_CORPUS_SEED" in findings[0].message


def test_real_repo_is_fully_centralised():
    assert lint(".") == []
