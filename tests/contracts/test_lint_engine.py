"""Engine mechanics: suppressions, baseline, parse errors, formats."""

import json

import pytest

from repro.contracts.engine import (
    apply_baseline,
    load_baseline,
    parse_suppressions,
    run_lint,
    save_baseline,
)
from repro.contracts.findings import Finding, format_json, format_text


def test_parse_suppressions_single_and_multi():
    lines = [
        "x = 1  # repro: lint-ok[determinism]",
        "y = 2",
        "# repro: lint-ok[broad-except, wire-pickle]",
    ]
    sup = parse_suppressions(lines)
    assert sup[1] == {"determinism"}
    assert 2 not in sup
    assert sup[3] == {"broad-except", "wire-pickle"}


def test_parse_error_becomes_finding(make_tree):
    root = make_tree({"src/repro/search/broken.py": "def f(:\n"})
    findings = run_lint(root, [])
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"
    assert findings[0].path == "src/repro/search/broken.py"


def test_only_walk_roots_are_linted(make_tree):
    root = make_tree(
        {
            "src/repro/a.py": "import os\nX = os.getenv('REPRO_X')\n",
            "tests/test_a.py": "import os\nX = os.getenv('REPRO_X')\n",
            "scripts/tool.py": "import os\nX = os.getenv('REPRO_X')\n",
        }
    )
    findings = run_lint(root)
    assert {f.path for f in findings} == {"src/repro/a.py"}


def test_baseline_roundtrip_and_count_aware_matching(tmp_path):
    f1 = Finding("determinism", "src/repro/a.py", 3, "clock read")
    f2 = Finding("determinism", "src/repro/a.py", 9, "clock read")
    f3 = Finding("broad-except", "src/repro/b.py", 5, "swallows")
    path = tmp_path / "baseline.json"
    save_baseline([f1], path)  # only ONE of the two identical findings
    baseline = load_baseline(path)
    new, matched = apply_baseline([f1, f2, f3], baseline)
    assert matched == 1
    # line numbers are ignored for matching, counts are not: the second
    # identical finding and the unbaselined rule both surface.
    assert [f.line for f in new] == [9, 5]


def test_baseline_must_be_a_list(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"rule": "x"}')
    with pytest.raises(ValueError, match="must be a JSON list"):
        load_baseline(path)


def test_format_text_and_json():
    f = Finding("wire-ops", "src/repro/w.py", 7, "orphan op")
    text = format_text([f])
    assert "src/repro/w.py:7: [wire-ops] orphan op" in text
    assert "1 finding(s)" in text
    data = json.loads(format_json([f]))
    assert data == [
        {"rule": "wire-ops", "path": "src/repro/w.py", "line": 7,
         "message": "orphan op"}
    ]
    assert "0 finding(s)" in format_text([])


def test_findings_sorted_by_path_then_line(make_tree):
    root = make_tree(
        {
            "src/repro/search/z.py": (
                "import time\n\n"
                "def f():\n"
                "    return time.time(), time.perf_counter()\n"
            ),
            "src/repro/search/a.py": (
                "import time\n\n"
                "def f():\n"
                "    return time.time()\n"
            ),
        }
    )
    findings = run_lint(root)
    assert [f.path for f in findings] == [
        "src/repro/search/a.py",
        "src/repro/search/z.py",
        "src/repro/search/z.py",
    ]
