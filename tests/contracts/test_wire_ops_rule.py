"""The ``wire-ops`` rule: declared ops vs. endpoint implementations."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.wire_ops import WireOpsRule


def lint(root):
    return run_lint(root, [WireOpsRule()])


WIRE = textwrap.dedent(
    """
    OP_PING = "ping"
    OP_PONG = "pong"
    OP_EVAL = "eval"
    OP_VALUES = "values"

    REQUEST_OPS = (OP_PING, OP_EVAL)
    REPLY_OPS = (OP_PONG, OP_VALUES)
    """
)

WORKER = textwrap.dedent(
    """
    from repro.distributed import wire


    class Session:
        def _op_ping(self, msg):
            return {"op": wire.OP_PONG}

        def _op_eval(self, msg):
            return {"op": wire.OP_VALUES, "values": []}
    """
)

CLIENT = textwrap.dedent(
    """
    from repro.distributed import wire


    def ping(conn):
        return conn.request({"op": wire.OP_PING}).get("op") == wire.OP_PONG


    def evaluate(conn, cands):
        reply = conn.request({"op": wire.OP_EVAL, "candidates": cands})
        assert reply.get("op") == wire.OP_VALUES
        return reply["values"]
    """
)


def tree(make_tree, wire=WIRE, worker=WORKER, client=CLIENT):
    return make_tree(
        {
            "src/repro/distributed/wire.py": wire,
            "src/repro/distributed/worker.py": worker,
            "src/repro/distributed/client.py": client,
        }
    )


def test_consistent_protocol_passes(make_tree):
    assert lint(tree(make_tree)) == []


def test_ungrouped_constant_flagged(make_tree):
    root = tree(make_tree, wire=WIRE + 'OP_ORPHAN = "orphan"\n')
    findings = lint(root)
    assert len(findings) == 1
    assert "no protocol role" in findings[0].message
    assert findings[0].path == "src/repro/distributed/wire.py"


def test_request_op_without_worker_handler_flagged(make_tree):
    wire = WIRE.replace(
        "REQUEST_OPS = (OP_PING, OP_EVAL)",
        'OP_HALT = "halt"\nREQUEST_OPS = (OP_PING, OP_EVAL, OP_HALT)',
    )
    client = CLIENT + (
        "\n\ndef halt(conn):\n"
        '    conn.request({"op": wire.OP_HALT})\n'
    )
    findings = lint(tree(make_tree, wire=wire, client=client))
    assert len(findings) == 1
    assert "no worker handler" in findings[0].message
    assert "_op_halt" in findings[0].message


def test_loop_handled_request_op_passes_via_reference(make_tree):
    # shutdown-style ops have no _op_ method but the worker loop
    # references the constant — that counts as handled.
    wire = WIRE.replace(
        "REQUEST_OPS = (OP_PING, OP_EVAL)",
        'OP_HALT = "halt"\nREQUEST_OPS = (OP_PING, OP_EVAL, OP_HALT)',
    )
    worker = WORKER + (
        "\n\ndef loop(msg):\n"
        '    return msg.get("op") == wire.OP_HALT\n'
    )
    client = CLIENT + (
        "\n\ndef halt(conn):\n"
        '    conn.request({"op": wire.OP_HALT})\n'
    )
    assert lint(tree(make_tree, wire=wire, worker=worker, client=client)) == []


def test_request_op_never_sent_by_client_flagged(make_tree):
    client = textwrap.dedent(
        """
        from repro.distributed import wire


        def ping(conn):
            return conn.request({"op": wire.OP_PING}).get("op") == wire.OP_PONG


        def evaluate(conn, cands):
            return []  # eval never dispatched
        """
    )
    findings = lint(tree(make_tree, client=client))
    msgs = " | ".join(f.message for f in findings)
    assert "'eval' is never sent" in msgs
    assert "'values' is never recognised" in msgs


def test_reply_op_never_produced_by_worker_flagged(make_tree):
    worker = textwrap.dedent(
        """
        from repro.distributed import wire


        class Session:
            def _op_ping(self, msg):
                return {"op": "pong"}  # literal, not the constant

            def _op_eval(self, msg):
                return {"op": wire.OP_VALUES, "values": []}
        """
    )
    findings = lint(tree(make_tree, worker=worker))
    assert len(findings) == 1
    assert "'pong' is never produced" in findings[0].message


def test_stray_worker_handler_flagged(make_tree):
    worker = WORKER + (
        "\n\n"
        "    def _op_legacy(self, msg):\n"
        '        return {"op": wire.OP_VALUES}\n'
    )
    findings = lint(tree(make_tree, worker=worker))
    assert len(findings) == 1
    assert "_op_legacy" in findings[0].message
    assert findings[0].path == "src/repro/distributed/worker.py"


def test_tree_without_wire_module_skipped(make_tree):
    root = make_tree({"src/repro/search/x.py": "A = 1\n"})
    assert lint(root) == []


def test_real_repo_protocol_is_closed():
    assert lint(".") == []
