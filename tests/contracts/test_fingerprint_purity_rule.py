"""The ``fingerprint-purity`` rule: speed knobs must NOT reach the
fingerprint (the mirror of ``fingerprint-coverage``)."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.fingerprint_purity import FingerprintPurityRule


def lint(root):
    return run_lint(root, [FingerprintPurityRule()])


ENVS = textwrap.dedent(
    """
    def _register(name, parser, default=None, **kw):
        return (name, parser, default, kw)


    BUDGET = _register(
        "REPRO_BUDGET", int, None,
        affects_results=True, fingerprint_field="budgets",
    )

    COMPILED_CASCADE = _register("REPRO_COMPILED_CASCADE", bool, True)

    SHM_TRANSPORT = _register(
        "REPRO_SHM_TRANSPORT", bool, True, affects_results=False,
    )
    """
)


def _search(tuple_src: str, prelude: str = "") -> str:
    return textwrap.dedent(
        f"""
        from repro import envs

        def run(nest, cache, seed):
            budgets = resolve_budgets()
        {prelude}
            fingerprint = {tuple_src}
            return fingerprint
        """
    )


def test_clean_fingerprint_passes(make_tree):
    root = make_tree(
        {
            "src/repro/envs.py": ENVS,
            "src/repro/search/tiling.py": _search(
                "(nest, repr(cache), seed, tuple(sorted(budgets.items())))"
            ),
        }
    )
    assert lint(root) == []


def test_pure_knob_in_tuple_is_flagged(make_tree):
    root = make_tree(
        {
            "src/repro/envs.py": ENVS,
            "src/repro/search/tiling.py": _search(
                "(nest, seed, envs.COMPILED_CASCADE.get())"
            ),
        }
    )
    findings = lint(root)
    assert len(findings) == 1
    assert "REPRO_COMPILED_CASCADE" in findings[0].message
    assert findings[0].path == "src/repro/search/tiling.py"


def test_pure_knob_through_assignment_chain_is_flagged(make_tree):
    """engine = knob → fingerprint: the def-use closure must catch it."""
    root = make_tree(
        {
            "src/repro/envs.py": ENVS,
            "src/repro/search/tiling.py": _search(
                "(nest, seed, engine)",
                prelude="    engine = 'c' if envs.SHM_TRANSPORT.get() else 'b'",
            ),
        }
    )
    findings = lint(root)
    assert len(findings) == 1
    assert "REPRO_SHM_TRANSPORT" in findings[0].message


def test_unrelated_knob_read_in_same_function_passes(make_tree):
    """Reading a speed knob for dispatch (not fingerprinting) is fine."""
    root = make_tree(
        {
            "src/repro/envs.py": ENVS,
            "src/repro/search/tiling.py": _search(
                "(nest, seed, tuple(sorted(budgets.items())))",
                prelude="    use_fast = envs.COMPILED_CASCADE.get()",
            ),
        }
    )
    assert lint(root) == []


def test_result_affecting_knob_is_allowed(make_tree):
    """Coverage mandates BUDGET in the fingerprint; purity must not
    contradict it."""
    root = make_tree(
        {
            "src/repro/envs.py": ENVS,
            "src/repro/search/tiling.py": _search(
                "(nest, seed, envs.BUDGET.get())"
            ),
        }
    )
    assert lint(root) == []


def test_bare_name_import_is_flagged(make_tree):
    src = textwrap.dedent(
        """
        from repro.envs import COMPILED_CASCADE

        def run(nest, seed):
            fingerprint = (nest, seed, COMPILED_CASCADE.get())
            return fingerprint
        """
    )
    root = make_tree(
        {"src/repro/envs.py": ENVS, "src/repro/search/tiling.py": src}
    )
    findings = lint(root)
    assert len(findings) == 1
    assert "COMPILED_CASCADE" in findings[0].message


def test_suppression_comment_is_honoured(make_tree):
    src = textwrap.dedent(
        """
        from repro import envs

        def run(nest, seed):
            # repro: lint-ok[fingerprint-purity]
            fingerprint = (nest, seed, envs.COMPILED_CASCADE.get())
            return fingerprint
        """
    )
    root = make_tree(
        {"src/repro/envs.py": ENVS, "src/repro/search/tiling.py": src}
    )
    assert lint(root) == []


def test_tree_without_registry_passes(make_tree):
    root = make_tree(
        {"src/repro/search/tiling.py": _search("(nest, seed)")}
    )
    assert lint(root) == []
