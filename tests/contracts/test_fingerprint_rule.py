"""The ``fingerprint-coverage`` rule: knobs must reach the fingerprint."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.fingerprint import FingerprintCoverageRule


def lint(root):
    return run_lint(root, [FingerprintCoverageRule()])


ENVS_WITH_FIELD = textwrap.dedent(
    """
    def _register(name, parser, default=None, **kw):
        return (name, parser, default, kw)


    BUDGET = _register(
        "REPRO_BUDGET", int, None,
        affects_results=True, fingerprint_field="budgets",
    )
    """
)


def _search_module(tuple_src: str) -> str:
    return textwrap.dedent(
        f"""
        def run(nest, cache, seed):
            budgets = resolve_budgets()
            fingerprint = {tuple_src}
            return fingerprint
        """
    )


def test_missing_field_in_fingerprint_flagged(make_tree):
    root = make_tree(
        {
            "src/repro/envs.py": ENVS_WITH_FIELD,
            "src/repro/search/tiling.py": _search_module(
                "(nest, repr(cache), seed)"
            ),
        }
    )
    findings = lint(root)
    assert len(findings) == 1
    assert findings[0].path == "src/repro/search/tiling.py"
    assert "'budgets'" in findings[0].message


def test_field_flowing_directly_passes(make_tree):
    root = make_tree(
        {
            "src/repro/envs.py": ENVS_WITH_FIELD,
            "src/repro/search/tiling.py": _search_module(
                "(nest, repr(cache), seed, tuple(sorted(budgets.items())))"
            ),
        }
    )
    assert lint(root) == []


def test_field_flowing_through_assignment_chain_passes(make_tree):
    # budgets -> frozen -> fingerprint: the def-use closure must follow it.
    src = textwrap.dedent(
        """
        def run(nest, seed):
            budgets = resolve_budgets()
            frozen = tuple(sorted(budgets.items()))
            fingerprint = (nest, seed, frozen)
            return fingerprint
        """
    )
    root = make_tree(
        {
            "src/repro/envs.py": ENVS_WITH_FIELD,
            "src/repro/search/tiling.py": src,
        }
    )
    assert lint(root) == []


def test_affects_results_without_field_flagged(make_tree):
    envs = textwrap.dedent(
        """
        def _register(name, parser, default=None, **kw):
            return (name, parser, default, kw)


        SNEAKY = _register("REPRO_SNEAKY", int, None, affects_results=True)
        """
    )
    root = make_tree({"src/repro/envs.py": envs})
    findings = lint(root)
    assert len(findings) == 1
    assert findings[0].path == "src/repro/envs.py"
    assert "no fingerprint_field" in findings[0].message


def test_declared_fields_with_no_construction_flagged(make_tree):
    root = make_tree({"src/repro/envs.py": ENVS_WITH_FIELD})
    findings = lint(root)
    assert len(findings) == 1
    assert "no `fingerprint = (...)` construction" in findings[0].message


def test_tree_without_registry_is_skipped(make_tree):
    root = make_tree(
        {"src/repro/search/tiling.py": _search_module("(nest, seed)")}
    )
    assert lint(root) == []


def test_real_repo_registry_is_covered():
    # The actual tree: every declared field reaches the real fingerprint.
    findings = lint(".")
    assert findings == []
