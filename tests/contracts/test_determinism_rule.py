"""The ``determinism`` rule: ambient-state reads in scoped packages."""

import textwrap

from repro.contracts.engine import run_lint
from repro.contracts.rules.determinism import DeterminismRule


def lint(root):
    return run_lint(root, [DeterminismRule()])


BAD = textwrap.dedent(
    """
    import os
    import random
    import time

    import numpy as np


    def schedule(x):
        t = time.time()
        r = random.random()
        u = np.random.rand()
        k = os.getenv("SOME_VAR")
        return t, r, u, k
    """
)


def test_flags_clock_rng_and_env_reads(make_tree):
    root = make_tree({"src/repro/search/bad.py": BAD})
    findings = lint(root)
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 4
    assert "time.time()" in messages
    assert "random.random()" in messages
    assert "np.random.rand()" in messages
    assert "os.getenv()" in messages
    assert all(f.rule == "determinism" for f in findings)
    assert all(f.path == "src/repro/search/bad.py" for f in findings)
    assert all(f.line > 0 for f in findings)


def test_sanctioned_twin_passes(make_tree):
    clean = textwrap.dedent(
        """
        import random
        import time

        import numpy as np

        from repro import envs


        def schedule(seed):
            deadline = time.monotonic() + 5.0
            rng = random.Random(seed)
            nrng = np.random.default_rng(seed)
            workers = envs.WORKERS.get()
            return deadline, rng, nrng, workers
        """
    )
    root = make_tree({"src/repro/search/clean.py": clean})
    assert lint(root) == []


def test_out_of_scope_packages_are_not_checked(make_tree):
    # Experiments legitimately time themselves; utils/timing wraps the
    # stopwatch.  The contract binds the result-computing packages only.
    root = make_tree({"src/repro/experiments/timing.py": BAD})
    assert lint(root) == []


def test_id_as_dict_key_flagged_object_key_passes(make_tree):
    bad = textwrap.dedent(
        """
        def track(conns):
            before = {id(c): c.sent for c in conns}
            table = {}
            table[id(conns[0])] = 1
            return before, table
        """
    )
    clean = textwrap.dedent(
        """
        def track(conns):
            before = {c: c.sent for c in conns}
            label = id(conns[0])  # id as a *value* (debug label) is fine
            return before, label
        """
    )
    root = make_tree(
        {
            "src/repro/distributed/bad.py": bad,
            "src/repro/distributed/clean.py": clean,
        }
    )
    findings = lint(root)
    assert len(findings) == 2
    assert all(f.path.endswith("bad.py") for f in findings)
    assert all("id()" in f.message for f in findings)


def test_os_environ_access_flagged(make_tree):
    bad = "import os\nWORKERS = os.environ.get('N', '1')\n"
    root = make_tree({"src/repro/evaluation/bad.py": bad})
    findings = lint(root)
    assert len(findings) == 1
    assert "os.environ" in findings[0].message


def test_suppression_comment_waives_the_line(make_tree):
    bad = textwrap.dedent(
        """
        import os


        def spawn_env():
            # inheritance copy, not an ambient read
            env = dict(os.environ)  # repro: lint-ok[determinism]
            return env
        """
    )
    root = make_tree({"src/repro/distributed/spawn.py": bad})
    assert lint(root) == []
