"""Padding search-space tests."""

import pytest

from repro.ir.arrays import Array
from repro.transform.padding import PaddingSearchSpace


def arrays():
    return (Array("a", (8, 8)), Array("b", (8, 8)), Array("v", (8,)))


def test_variable_enumeration():
    space = PaddingSearchSpace(arrays(), way_bytes=1024, line_bytes=32)
    kinds = [(v.kind, v.array) for v in space.variables]
    # one inter per array; one intra per non-last dim (2D arrays only).
    assert kinds.count(("inter", "a")) == 1
    assert kinds.count(("intra", "a")) == 1
    assert kinds.count(("intra", "v")) == 0
    assert space.num_variables == 5


def test_decode_roundtrip():
    space = PaddingSearchSpace(arrays(), way_bytes=1024, line_bytes=32)
    values = [min(3, v.upper) for v in space.variables]
    spec = space.decode(values)
    for v, val in zip(space.variables, values):
        if v.kind == "inter":
            assert spec.inter_for(Array(v.array, (8, 8)) if v.array != "v" else Array("v", (8,))) == val


def test_decode_validates():
    space = PaddingSearchSpace(arrays(), way_bytes=1024, line_bytes=32)
    with pytest.raises(ValueError):
        space.decode([0] * (space.num_variables + 1))
    with pytest.raises(ValueError):
        space.decode([-1] + [0] * (space.num_variables - 1))
    with pytest.raises(ValueError):
        space.decode([space.variables[0].upper + 1] + [0] * (space.num_variables - 1))


def test_zero_padding_is_identity():
    space = PaddingSearchSpace(arrays(), way_bytes=1024, line_bytes=32)
    spec = space.zero()
    assert not spec.inter
    assert not spec.intra


def test_inter_only_mode():
    space = PaddingSearchSpace(arrays(), way_bytes=1024, line_bytes=32, pad_intra=False)
    assert all(v.kind == "inter" for v in space.variables)


def test_padding_changes_conflicts():
    """Inter-array padding must break a perfect aliasing ping-pong."""
    from repro.cache.config import CacheConfig
    from repro.ir.affine import AffineExpr
    from repro.ir.arrays import read
    from repro.ir.loops import Loop, LoopNest
    from repro.ir.program import program_from_nest
    from repro.layout.memory import MemoryLayout, PaddingSpec
    from repro.simulator.classify import simulate_program

    n = 128  # each array exactly one 1KB way
    a = Array("a", (n,))
    b = Array("b", (n,))
    i = AffineExpr.var("i")
    nest = LoopNest("pp", (Loop("i", 1, n),), (read(a, i), read(b, i, position=1)))
    cache = CacheConfig(1024, 32, 1)
    prog = program_from_nest(nest)
    plain = simulate_program(prog, MemoryLayout(nest.arrays()), cache)
    padded = simulate_program(
        prog, MemoryLayout(nest.arrays(), PaddingSpec(inter={"b": 4})), cache
    )
    assert padded.replacement < plain.replacement
    assert padded.replacement == 0
