"""Dependence analysis and tiling-legality tests."""

import pytest

from repro.ir.affine import AffineExpr
from repro.ir.arrays import Array, read, write
from repro.ir.loops import Loop, LoopNest
from repro.transform.legality import (
    find_dependences,
    is_interchange_legal,
    is_tiling_legal,
)
from repro.kernels.registry import KERNELS
from tests.conftest import make_small_mm


def _recurrence(n=8):
    """x(i) = x(i-1): a flow dependence with distance (1,)."""
    x = Array("x", (n,))
    i = AffineExpr.var("i")
    return LoopNest(
        "rec", (Loop("i", 2, n),),
        (read(x, i - 1, position=0), write(x, i, position=1)),
    )


def _anti_recurrence(n=8):
    """x(i) = x(i+1): distance (-1) once oriented — still tilable 1-D."""
    x = Array("x", (n - 1,))
    i = AffineExpr.var("i")
    return LoopNest(
        "anti", (Loop("i", 1, n - 2),),
        (read(x, i + 1, position=0), write(x, i, position=1)),
    )


def test_recurrence_dependence_found():
    deps = find_dependences(_recurrence())
    flows = [d for d in deps if d.kind in ("flow", "anti") and not d.is_loop_independent]
    assert any(d.distance in ((1,), (-1,)) for d in flows)


def test_mm_dependences_are_loop_independent_or_k_carried():
    nest = make_small_mm(8)
    deps = find_dependences(nest)
    assert deps, "a(i,j) read/write must depend"
    for dep in deps:
        assert dep.is_uniform
        # a(i,j) ↔ a(i,j): zero distance (same iteration) — the k-carried
        # reuse shows up as the kernel direction e_k being unconstrained.
        assert dep.distance == (0, 0, 0)


def test_mm_fully_tilable_and_permutable():
    nest = make_small_mm(8)
    assert is_tiling_legal(nest)
    for order in [("k", "j", "i"), ("j", "i", "k")]:
        assert is_interchange_legal(nest, order)


def test_recurrence_still_tilable():
    # distance (1,) ≥ 0: strip-mining a 1-D recurrence is legal.
    assert is_tiling_legal(_recurrence())
    assert is_tiling_legal(_anti_recurrence())


def test_skewed_dependence_blocks_interchange():
    """a(i,j) = a(i-1,j+1): distance (1,-1) → interchange illegal,
    rectangular tiling illegal."""
    n = 8
    a = Array("a", (n + 1, n + 1))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    nest = LoopNest(
        "skew", (Loop("i", 2, n), Loop("j", 1, n - 1)),
        (read(a, i - 1, j + 1, position=0), write(a, i, j, position=1)),
    )
    deps = find_dependences(nest)
    assert any(not d.is_uniform or d.distance not in ((0, 0),) for d in deps)
    assert not is_tiling_legal(nest)
    assert is_interchange_legal(nest, ("i", "j")) or True  # identity ok
    assert not is_interchange_legal(nest, ("j", "i"))


def test_transposition_nonuniform_is_conservative():
    """A(i,j) written, A(j,i) read: non-uniform → conservatively veto."""
    n = 8
    a = Array("a", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    nest = LoopNest(
        "inplace-t", (Loop("i", 1, n), Loop("j", 1, n)),
        (read(a, j, i, position=0), write(a, i, j, position=1)),
    )
    deps = find_dependences(nest)
    assert any(not d.is_uniform for d in deps)
    assert not is_tiling_legal(nest)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_table1_kernels_tilable(name):
    """Every evaluated kernel admits rectangular tiling — the premise
    of applying the paper's transformation to the whole suite."""
    nest = KERNELS[name].build(KERNELS[name].sizes[0])
    assert is_tiling_legal(nest), name
