"""Strip-mining tests (Fig. 2)."""

import pytest

from repro.transform.stripmine import strip_mine
from tests.conftest import make_copy_1d, make_small_transpose


def test_strip_mine_single_dim():
    prog = strip_mine(make_copy_1d(7), "i", 3)
    assert prog.space.num_points == 7
    assert len(prog.space.regions) == 2  # Fig. 2(b)


def test_strip_mine_leaves_other_dims():
    prog = strip_mine(make_small_transpose(8), "i2", 3)
    # i1 untouched (one full tile), i2 has a boundary region.
    assert prog.space.num_points == 64
    assert len(prog.space.regions) == 2


def test_strip_mine_unknown_var():
    with pytest.raises(KeyError):
        strip_mine(make_copy_1d(7), "zz", 2)
