"""Loop interchange tests."""

import pytest

from repro.transform.interchange import interchange
from tests.conftest import make_small_mm


def test_interchange_reorders():
    nest = make_small_mm(6)
    swapped = interchange(nest, ("k", "j", "i"))
    assert swapped.vars == ("k", "j", "i")
    assert swapped.refs == nest.refs
    assert swapped.num_iterations == nest.num_iterations


def test_interchange_requires_permutation():
    nest = make_small_mm(6)
    with pytest.raises(ValueError):
        interchange(nest, ("i", "j"))
    with pytest.raises(ValueError):
        interchange(nest, ("i", "j", "q"))


def test_interchange_changes_locality():
    """jki vs ijk orders have different simulated miss counts."""
    from repro.cache.config import CacheConfig
    from repro.ir.program import program_from_nest
    from repro.layout.memory import MemoryLayout
    from repro.simulator.classify import simulate_program

    nest = make_small_mm(16)
    layout = MemoryLayout(nest.arrays())
    cache = CacheConfig(512, 32, 1)
    base = simulate_program(program_from_nest(nest), layout, cache)
    alt = simulate_program(
        program_from_nest(interchange(nest, ("j", "k", "i"))), layout, cache
    )
    assert base.misses != alt.misses
