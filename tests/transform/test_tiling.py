"""Tiling transformation tests, including the Fig. 2 example."""

import pytest

from repro.ir.program import program_from_nest
from repro.polyhedra.box import Box
from repro.transform.tiling import tile_program, tile_regions, tiled_var_names
from tests.conftest import make_copy_1d, make_small_transpose


def test_fig2_regions():
    """Fig. 2(b): do i=1,7 strip-mined by 3 → full tiles {1..6} and a
    boundary tile {7}, exactly — not the approximations of 2(c)/2(d)."""
    regions = tile_regions((7,), (3,))
    assert Box((0, 1), (1, 3)) in regions  # tiles 0-1, u ∈ 1..3
    assert Box((2, 1), (2, 1)) in regions  # boundary tile, u = 1
    assert len(regions) == 2
    assert sum(r.volume for r in regions) == 7


def test_regions_partition_2d():
    regions = tile_regions((8, 8), (3, 3))
    assert len(regions) == 4  # full×full, full×part, part×full, part×part
    assert sum(r.volume for r in regions) == 64


def test_dividing_tiles_single_region():
    regions = tile_regions((8, 6), (4, 3))
    assert len(regions) == 1
    assert regions[0].volume == 48


def test_tile_size_one_and_full():
    assert sum(r.volume for r in tile_regions((5,), (1,))) == 5
    assert sum(r.volume for r in tile_regions((5,), (5,))) == 5


def test_tiled_program_point_count_preserved():
    nest = make_small_transpose(9)
    prog = tile_program(nest, (4, 2))
    assert prog.space.num_points == 81
    assert prog.space.vars == tiled_var_names(("i1", "i2"))


def test_tiled_program_addresses_match_original_elementwise():
    """For every original point, the tiled refs must compute the same
    addresses through the substituted subscripts."""
    from repro.layout.memory import MemoryLayout

    nest = make_small_transpose(7)
    layout = MemoryLayout(nest.arrays())
    orig_prog = program_from_nest(nest)
    tiled = tile_program(nest, (3, 2))
    for p in orig_prog.space.all_points_lex():
        env_o = dict(zip(orig_prog.space.vars, p))
        q = tiled.point_map.from_original(tuple(p))
        env_t = dict(zip(tiled.space.vars, q))
        for ro, rt in zip(orig_prog.refs, tiled.refs):
            assert (
                layout.address_expr(ro).evaluate(env_o)
                == layout.address_expr(rt).evaluate(env_t)
            )


def test_every_tiled_point_maps_into_space():
    nest = make_copy_1d(7)
    tiled = tile_program(nest, (3,))
    seen = set()
    for i in range(1, 8):
        q = tiled.point_map.from_original((i,))
        assert tiled.space.contains(q)
        seen.add(q)
    assert len(seen) == tiled.space.num_points


def test_invalid_tile_sizes_rejected():
    nest = make_copy_1d(7)
    with pytest.raises(ValueError):
        tile_program(nest, (0,))
    with pytest.raises(ValueError):
        tile_program(nest, (8,))
    with pytest.raises(ValueError):
        tile_program(nest, (3, 3))


def test_mapping_tile_sizes():
    nest = make_small_transpose(6)
    prog = tile_program(nest, {"i1": 2})  # i2 defaults to full extent
    assert prog.space.num_points == 36
    assert len(prog.space.regions) == 1
