"""Utility module tests."""

import numpy as np

from repro.utils.rng import make_rng, spawn_rng
from repro.utils.timing import Timer


def test_make_rng_from_int_deterministic():
    assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)


def test_make_rng_passthrough():
    rng = np.random.default_rng(0)
    assert make_rng(rng) is rng


def test_spawn_rng_independent_streams():
    parent1 = make_rng(1)
    parent2 = make_rng(1)
    a = spawn_rng(parent1, 1)
    b = spawn_rng(parent2, 2)
    assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)


def test_timer_measures():
    with Timer() as t:
        sum(range(1000))
    assert t.elapsed >= 0.0


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"
